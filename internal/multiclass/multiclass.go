// Package multiclass extends the finite-workload transient model to
// heterogeneous task classes — the BCMP-style generalization the
// paper's background section points at. Each class has its own
// exponential service rates, routing chain and entry vector; the
// workload is a vector of task counts per class; and the admission
// policy decides which queued class replaces a departure.
//
// Modeling choices, chosen to keep the chain exactly Markov:
//
//   - Service is exponential with class-dependent rates (phase-type
//     per class would multiply the state space by phase vectors per
//     position; single-class phase-type lives in internal/core).
//   - Queue stations serve in random order (ROS): on a completion the
//     next customer is drawn uniformly from those waiting. For
//     exponential service ROS has the same count process as FCFS in
//     the single-class case, and stays exact — not approximate — as a
//     model in the multiclass case.
//   - The population state is a vector (k₁, …, k_C); departures step
//     down one class, replacements step back up a class chosen by the
//     admission policy, so the solver walks a lattice of population
//     vectors instead of the single-class ladder.
package multiclass

import (
	"fmt"
	"math"

	"finwl/internal/matrix"
	"finwl/internal/statespace"
)

// Station is one service station; multiclass supports Delay and
// Queue kinds.
type Station struct {
	Name string
	Kind statespace.Kind
}

// Config describes a multiclass network.
type Config struct {
	Stations []Station
	Classes  int
	// Rates[st][c] is the exponential service rate of class c at
	// station st.
	Rates [][]float64
	// Route[c] is class c's station-level routing matrix; Exit[c] and
	// Entry[c] its exit and entry vectors.
	Route []*matrix.Matrix
	Exit  [][]float64
	Entry [][]float64
}

// Validate checks dimensions and probability structure.
func (cfg *Config) Validate() error {
	m := len(cfg.Stations)
	if m == 0 {
		return fmt.Errorf("multiclass: no stations")
	}
	if cfg.Classes < 1 {
		return fmt.Errorf("multiclass: %d classes", cfg.Classes)
	}
	for st, s := range cfg.Stations {
		if s.Kind != statespace.Delay && s.Kind != statespace.Queue {
			return fmt.Errorf("multiclass: station %d kind %v unsupported", st, s.Kind)
		}
	}
	if len(cfg.Rates) != m {
		return fmt.Errorf("multiclass: rates for %d stations, want %d", len(cfg.Rates), m)
	}
	for st := range cfg.Rates {
		if len(cfg.Rates[st]) != cfg.Classes {
			return fmt.Errorf("multiclass: station %d has %d class rates", st, len(cfg.Rates[st]))
		}
		for c, r := range cfg.Rates[st] {
			if r <= 0 {
				return fmt.Errorf("multiclass: rate[%d][%d] = %v", st, c, r)
			}
		}
	}
	if len(cfg.Route) != cfg.Classes || len(cfg.Exit) != cfg.Classes || len(cfg.Entry) != cfg.Classes {
		return fmt.Errorf("multiclass: routing/exit/entry not per-class")
	}
	for c := 0; c < cfg.Classes; c++ {
		if cfg.Route[c].Rows() != m || cfg.Route[c].Cols() != m {
			return fmt.Errorf("multiclass: class %d routing is %dx%d", c, cfg.Route[c].Rows(), cfg.Route[c].Cols())
		}
		var entrySum float64
		for st := 0; st < m; st++ {
			rowSum := cfg.Exit[c][st]
			if rowSum < 0 {
				return fmt.Errorf("multiclass: negative exit class %d station %d", c, st)
			}
			for j := 0; j < m; j++ {
				v := cfg.Route[c].At(st, j)
				if v < 0 {
					return fmt.Errorf("multiclass: negative routing class %d (%d,%d)", c, st, j)
				}
				rowSum += v
			}
			if math.Abs(rowSum-1) > 1e-9 {
				return fmt.Errorf("multiclass: class %d station %d routing+exit = %v", c, st, rowSum)
			}
			if cfg.Entry[c][st] < 0 {
				return fmt.Errorf("multiclass: negative entry class %d station %d", c, st)
			}
			entrySum += cfg.Entry[c][st]
		}
		if math.Abs(entrySum-1) > 1e-9 {
			return fmt.Errorf("multiclass: class %d entry sums to %v", c, entrySum)
		}
	}
	return nil
}

// State layout: delay stations store C counts; queue stations store C
// counts plus a serving-class slot (canonical 0 when empty).
type space struct {
	cfg     *Config
	offsets []int
	width   int
}

func newSpace(cfg *Config) *space {
	s := &space{cfg: cfg, offsets: make([]int, len(cfg.Stations))}
	for st, stn := range cfg.Stations {
		s.offsets[st] = s.width
		if stn.Kind == statespace.Delay {
			s.width += cfg.Classes
		} else {
			s.width += cfg.Classes + 1
		}
	}
	return s
}

func (s *space) count(state []int, st, c int) int { return state[s.offsets[st]+c] }
func (s *space) setCount(state []int, st, c, n int) {
	state[s.offsets[st]+c] = n
}
func (s *space) stationTotal(state []int, st int) int {
	total := 0
	for c := 0; c < s.cfg.Classes; c++ {
		total += state[s.offsets[st]+c]
	}
	return total
}
func (s *space) serving(state []int, st int) int { return state[s.offsets[st]+s.cfg.Classes] }
func (s *space) setServing(state []int, st, c int) {
	state[s.offsets[st]+s.cfg.Classes] = c
}

func (s *space) key(state []int) string {
	b := make([]byte, len(state))
	for i, v := range state {
		b[i] = byte(v)
	}
	return string(b)
}

// level holds the matrices for one population vector.
type level struct {
	pop    []int
	states [][]int
	index  map[string]int
	mDiag  []float64
	p      *matrix.Matrix
	fact   *matrix.LU
	tau    []float64
	// q[c] maps a class-c departure to the states of pop − e_c.
	q []*matrix.Matrix
}

// enumerate lists all states with the given per-class populations.
func (s *space) enumerate(pop []int) *level {
	lvl := &level{pop: append([]int(nil), pop...), index: map[string]int{}}
	state := make([]int, s.width)
	remaining := append([]int(nil), pop...)
	var rec func(st int)
	rec = func(st int) {
		if st == len(s.cfg.Stations) {
			for _, r := range remaining {
				if r != 0 {
					return
				}
			}
			cp := append([]int(nil), state...)
			lvl.index[s.key(cp)] = len(lvl.states)
			lvl.states = append(lvl.states, cp)
			return
		}
		s.placeStation(st, 0, state, remaining, func() { rec(st + 1) })
	}
	rec(0)
	return lvl
}

// placeStation distributes any prefix of the remaining tasks of each
// class onto station st, then calls next; queue stations additionally
// choose a serving class when non-empty.
func (s *space) placeStation(st, c int, state, remaining []int, next func()) {
	if c == s.cfg.Classes {
		if s.cfg.Stations[st].Kind == statespace.Queue {
			if s.stationTotal(state, st) == 0 {
				s.setServing(state, st, 0)
				next()
			} else {
				for sc := 0; sc < s.cfg.Classes; sc++ {
					if s.count(state, st, sc) > 0 {
						s.setServing(state, st, sc)
						next()
					}
				}
				s.setServing(state, st, 0)
			}
		} else {
			next()
		}
		return
	}
	for n := 0; n <= remaining[c]; n++ {
		s.setCount(state, st, c, n)
		remaining[c] -= n
		s.placeStation(st, c+1, state, remaining, next)
		remaining[c] += n
	}
	s.setCount(state, st, c, 0)
}
