package multiclass

import (
	"fmt"
	"math"
	"math/rand"

	"finwl/internal/statespace"
)

// Simulate runs one discrete-event replication of the multiclass
// workload with the exact semantics of the analytic model: ROS
// queues, policy-driven admission, immediate replacement. It returns
// the job completion time.
func Simulate(cfg *Config, w Workload, seed int64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range w.Counts {
		total += n
	}
	if total < 1 || w.K < 1 {
		return 0, fmt.Errorf("multiclass: bad workload %+v", w)
	}
	rng := rand.New(rand.NewSource(seed))
	m := len(cfg.Stations)

	type ev struct {
		time    float64
		seq     int
		station int
		class   int
	}
	var events []ev
	push := func(e ev) {
		events = append(events, e)
		up := len(events) - 1
		for up > 0 {
			parent := (up - 1) / 2
			if events[parent].time < events[up].time ||
				(events[parent].time == events[up].time && events[parent].seq < events[up].seq) {
				break
			}
			events[parent], events[up] = events[up], events[parent]
			up = parent
		}
	}
	pop := func() ev {
		top := events[0]
		last := len(events) - 1
		events[0] = events[last]
		events = events[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			less := func(a, b int) bool {
				return events[a].time < events[b].time ||
					(events[a].time == events[b].time && events[a].seq < events[b].seq)
			}
			if l < len(events) && less(l, small) {
				small = l
			}
			if r < len(events) && less(r, small) {
				small = r
			}
			if small == i {
				break
			}
			events[i], events[small] = events[small], events[i]
			i = small
		}
		return top
	}
	var (
		now     float64
		seq     int
		queued  = append([]int(nil), w.Counts...)
		waiting = make([][]int, m) // class of each waiting customer at queue stations
		busy    = make([]bool, m)
	)

	schedule := func(st, class int) {
		seq++
		push(ev{time: now + rng.ExpFloat64()/cfg.Rates[st][class], seq: seq, station: st, class: class})
	}
	arrive := func(st, class int) {
		if cfg.Stations[st].Kind == statespace.Delay {
			schedule(st, class)
			return
		}
		if busy[st] {
			waiting[st] = append(waiting[st], class)
		} else {
			busy[st] = true
			schedule(st, class)
		}
	}
	admit := func() bool {
		totalQueued := 0
		for _, q := range queued {
			totalQueued += q
		}
		if totalQueued == 0 {
			return false
		}
		class := -1
		switch w.Policy {
		case PriorityOrder:
			for c, q := range queued {
				if q > 0 {
					class = c
					break
				}
			}
		default:
			u := rng.Intn(totalQueued)
			for c, q := range queued {
				if u < q {
					class = c
					break
				}
				u -= q
			}
		}
		queued[class]--
		entry := cfg.Entry[class]
		u := rng.Float64()
		var cum float64
		st := len(entry) - 1
		for j, p := range entry {
			cum += p
			if u < cum {
				st = j
				break
			}
		}
		arrive(st, class)
		return true
	}

	admitN := w.K
	if admitN > total {
		admitN = total
	}
	for i := 0; i < admitN; i++ {
		admit()
	}

	departed := 0
	for departed < total {
		if len(events) == 0 {
			return 0, fmt.Errorf("multiclass: deadlock at %v", now)
		}
		e := pop()
		now = e.time
		st, class := e.station, e.class
		if cfg.Stations[st].Kind == statespace.Queue {
			if len(waiting[st]) > 0 {
				// ROS: draw the next customer uniformly.
				idx := rng.Intn(len(waiting[st]))
				next := waiting[st][idx]
				waiting[st][idx] = waiting[st][len(waiting[st])-1]
				waiting[st] = waiting[st][:len(waiting[st])-1]
				schedule(st, next)
			} else {
				busy[st] = false
			}
		}
		// Route or exit.
		u := rng.Float64()
		cum := cfg.Exit[class][st]
		if u < cum {
			departed++
			admit()
			continue
		}
		dst := -1
		for j := 0; j < m; j++ {
			cum += cfg.Route[class].At(st, j)
			if u < cum {
				dst = j
				break
			}
		}
		if dst < 0 {
			dst = m - 1
		}
		arrive(dst, class)
	}
	return now, nil
}

// Replicate averages Simulate over seeds seed..seed+reps−1 and
// returns the mean and its 95% CI half-width.
func Replicate(cfg *Config, w Workload, seed int64, reps int) (mean, ci float64, err error) {
	if reps < 2 {
		return 0, 0, fmt.Errorf("multiclass: need >= 2 replications")
	}
	totals := make([]float64, reps)
	for r := 0; r < reps; r++ {
		totals[r], err = Simulate(cfg, w, seed+int64(r))
		if err != nil {
			return 0, 0, err
		}
		mean += totals[r]
	}
	mean /= float64(reps)
	var ss float64
	for _, v := range totals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(reps-1))
	return mean, 1.96 * sd / math.Sqrt(float64(reps)), nil
}
