package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterReregistrationReturnsSame(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering the same counter must return the original")
	}
	lbl := r.Counter("dup_total", "labeled", L("x", "1"))
	if lbl == a {
		t.Fatal("different labels must yield a distinct family member")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict", "counter")
	defer func() {
		if recover() == nil {
			t.Fatal("registering conflict as a gauge should panic")
		}
	}()
	r.Gauge("conflict", "gauge")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("computed", "scrape-time gauge", func() float64 { return v })
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "computed 1.5\n") {
		t.Fatalf("exposition missing computed gauge:\n%s", b.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latencies", []int64{10, 100, 1000}, 1)
	for _, v := range []int64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // ≤10: {5,10}; ≤100: {11}; ≤1000: {500}; +Inf: {5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || s.Sum != 5+10+11+500+5000 {
		t.Fatalf("count/sum = %d/%d, want 5/%d", s.Count, s.Sum, 5+10+11+500+5000)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("shard_a", "h", []int64{1, 2}, 1)
	b := r.Histogram("shard_b", "h", []int64{1, 2}, 1)
	a.Observe(1)
	a.Observe(3)
	b.Observe(2)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 6 {
		t.Fatalf("merged count/sum = %d/%d, want 3/6", m.Count, m.Sum)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merged counts = %v, want [1 1 1]", m.Counts)
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("layout_a", "h", []int64{1, 2}, 1)
	b := r.Histogram("layout_b", "h", []int64{1, 3}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched layouts should panic")
		}
	}()
	a.Snapshot().Merge(b.Snapshot())
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1000, 4, 5)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending: %v", b)
		}
	}
	if b[0] != 1000 || b[4] != 256000 {
		t.Fatalf("unexpected bounds %v", b)
	}
	// Degenerate factor still yields strictly ascending bounds.
	d := ExpBounds(1, 1.0, 4)
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("degenerate bounds not ascending: %v", d)
		}
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_ns", "span", ExpBounds(1, 10, 8), 1e-9)
	sp := h.Start()
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("span measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	var zero Span
	if zero.End() != 0 {
		t.Fatal("zero span must be a no-op")
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("request IDs must be unique and non-empty: %q, %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(empty) = %q, want \"\"", got)
	}
}

func TestExpvarPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("expvar_test_total", "c").Add(3)
	PublishExpvar("obs_test_metrics", r)
	PublishExpvar("obs_test_metrics", r) // must not panic on republish
	m := r.Expvar()().(map[string]any)
	if m["expvar_test_total"] != int64(3) {
		t.Fatalf("expvar map = %v, want expvar_test_total=3", m)
	}
}
