package obs

import (
	"math"
	"testing"
)

func TestHistSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "", []int64{10, 20, 40}, 1)
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// p50 lands exactly at the first bucket's upper edge.
	if got := s.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// p75 is halfway through the second bucket: 10 + (20-10)*0.5.
	if got := s.Quantile(0.75); got != 15 {
		t.Fatalf("p75 = %v, want 15", got)
	}
	if got := s.Quantile(1); got != 20 {
		t.Fatalf("p100 = %v, want 20", got)
	}
	// Clamping.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Fatal("p outside [0,1] not clamped")
	}
}

func TestHistSnapshotQuantileEdges(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("q_empty", "", []int64{10}, 1)
	if got := empty.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// All mass in the +Inf overflow bucket: the estimate degrades to
	// the last finite bound — a lower bound, never an invention.
	over := r.Histogram("q_over", "", []int64{10, 20}, 1)
	over.Observe(1000)
	over.Observe(2000)
	if got := over.Snapshot().Quantile(0.99); got != 20 {
		t.Fatalf("overflow quantile = %v, want 20 (last finite bound)", got)
	}

	// Quantiles are monotone in p.
	r2 := NewRegistry()
	h := r2.Histogram("q_mono", "", ExpBounds(1, 2, 12), 1)
	for v := int64(1); v < 3000; v = v*3 + 1 {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistSnapshotQuantileMerged(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("q_a", "", []int64{10, 20}, 1)
	b := r.Histogram("q_b", "", []int64{10, 20}, 1)
	for i := 0; i < 4; i++ {
		a.Observe(5)
		b.Observe(15)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 8 {
		t.Fatalf("merged count %d", m.Count)
	}
	if got := m.Quantile(0.5); got != 10 {
		t.Fatalf("merged p50 = %v, want 10", got)
	}
}
