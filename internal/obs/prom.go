package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// writeSample emits one exposition line: name{labels,extra} value.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float the way the Prometheus text format
// expects: shortest round-trip representation, +Inf/-Inf/NaN spelled
// out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry's metrics in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// metric family, then every family member's samples.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	order := make([]metric, len(r.order))
	copy(order, r.order)
	help := make(map[string]string, len(r.helpFor))
	for k, v := range r.helpFor {
		help[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	lastFamily := ""
	for _, m := range order {
		mm := m.meta()
		if mm.name != lastFamily {
			if h := help[mm.name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", mm.name, escapeHelp(h))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", mm.name, mm.kind)
			lastFamily = mm.name
		}
		m.writeProm(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromContentType is the exposition content type served by Handler.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the given registries (in order) as one Prometheus
// text exposition page. Registries must not share metric family names.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WriteProm(w); err != nil {
				return // client went away; nothing useful to do
			}
		}
	})
}

// Expvar returns an expvar.Func that renders the registry as a
// name{labels} → value map — counters and gauges as numbers,
// histograms as HistSnapshot objects.
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		r.mu.RLock()
		defer r.mu.RUnlock()
		out := make(map[string]any, len(r.order))
		for _, m := range r.order {
			mm := m.meta()
			key := mm.name
			if mm.labels != "" {
				key += "{" + mm.labels + "}"
			}
			out[key] = m.value()
		}
		return out
	}
}

// PublishExpvar publishes the registries under the given expvar name
// (idempotent: republishing the same name is a no-op, so tests and
// restarted components do not trip expvar's duplicate panic).
func PublishExpvar(name string, regs ...*Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any, len(regs))
		for _, r := range regs {
			if r == nil {
				continue
			}
			m := r.Expvar()().(map[string]any)
			for k, v := range m {
				out[k] = v
			}
		}
		return out
	}))
}
