package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
)

// reqIDKey is the private context key for request IDs.
type reqIDKey struct{}

// reqSeq distinguishes requests within a process; the random prefix
// distinguishes processes, so IDs stay unique across restarts without
// needing crypto randomness.
var (
	reqSeq    atomic.Uint64
	reqPrefix = fmt.Sprintf("%08x", rand.Uint32())
)

// NewRequestID returns a fresh process-unique request ID, e.g.
// "a1b2c3d4-0000002a".
func NewRequestID() string {
	return fmt.Sprintf("%s-%08x", reqPrefix, reqSeq.Add(1))
}

// WithRequestID attaches a request ID to ctx. The ID travels with the
// context through the solver pipeline and is picked up by
// check.Canceled so cancellation errors name the request that died.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
