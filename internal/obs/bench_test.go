package obs

import (
	"testing"
	"time"
)

// The Perf benchmarks are picked up by scripts/bench.sh and the CI
// bench smoke; their allocs/op columns are the instrumentation-cost
// contract: observing any metric must be allocation-free so the
// solver's epoch kernels keep 0 allocs/op.

func BenchmarkPerfObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkPerfObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "h", ExpBounds(1000, 4, 12), 1e-9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xffff)
	}
}

func BenchmarkPerfObsSpan(b *testing.B) {
	h := NewRegistry().Histogram("bench_span", "h", ExpBounds(1000, 4, 12), 1e-9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}

// TestObserveAllocFree pins the alloc-free property as a plain test so
// it fails fast even when benchmarks are not run.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocfree_total", "c")
	g := r.Gauge("allocfree_gauge", "g")
	h := r.Histogram("allocfree_hist", "h", ExpBounds(1, 2, 10), 1)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(7)
		h.ObserveDuration(time.Microsecond)
	}); n != 0 {
		t.Fatalf("observe path allocates %v objects/op, want 0", n)
	}
}
