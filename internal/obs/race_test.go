package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentObserveVsSnapshot hammers every metric type from
// writer goroutines while readers scrape and snapshot concurrently.
// Run under -race (scripts/ci.sh does) this is the data-race gate for
// the whole registry.
func TestConcurrentObserveVsSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "c")
	g := r.Gauge("race_gauge", "g")
	h := r.Histogram("race_hist", "h", ExpBounds(1, 4, 8), 1)
	r.GaugeFunc("race_func", "f", func() float64 { return float64(c.Value()) })

	const writers, readers, iters = 8, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + int64(i)%1000)
				// Late registration must also be safe against scrapes.
				if i == iters/2 {
					r.Counter("race_late_total", "late", L("w", string(rune('a'+seed)))).Inc()
				}
			}
		}(int64(w))
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				if err := r.WriteProm(io.Discard); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				_ = h.Snapshot()
				_ = r.Expvar()()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	s := h.Snapshot()
	if s.Count != writers*iters {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*iters)
	}
	var cum int64
	for _, n := range s.Counts {
		cum += n
	}
	if cum != s.Count {
		t.Fatalf("bucket total %d != count %d", cum, s.Count)
	}
}
