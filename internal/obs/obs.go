// Package obs is the stdlib-only observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms with
// mergeable snapshots, lightweight span timers, a Prometheus text
// exposition writer, expvar publishing, and per-request ID propagation
// through context.
//
// The design goals, in order:
//
//   - hot-path cost: observing a counter or histogram is a handful of
//     atomic adds and never allocates, so the solver's epoch kernels
//     keep their 0 allocs/op property with instrumentation enabled
//     (bench-asserted);
//   - no dependencies: only the standard library, so every package —
//     including internal/matrix at the bottom of the stack — can
//     instrument itself;
//   - two scopes: the package-level Default registry carries
//     process-wide solver-stage metrics (chain construction, LU
//     factorization, epoch kernels, BiCGSTAB), while components that
//     need isolated counters (one serve.Server per test) create their
//     own Registry and expose both on one /metrics endpoint.
//
// Metric handles are resolved once (package var or struct field) and
// then observed lock-free; the registry lock is only taken at
// registration and at scrape time.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to a metric at
// registration. Metrics sharing a name but differing in labels form a
// family and are exposed under a single HELP/TYPE header.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// kind is the exposition type of a metric.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is the registry's view of one registered instrument.
type metric interface {
	meta() *metricMeta
	// writeProm appends the metric's sample lines (no HELP/TYPE
	// headers) to b.
	writeProm(b *strings.Builder)
	// value returns a JSON-friendly snapshot for expvar.
	value() any
}

// metricMeta is the identity shared by every metric type.
type metricMeta struct {
	name   string
	help   string
	kind   kind
	labels string // rendered `k="v",...`, may be empty
}

func (m *metricMeta) meta() *metricMeta { return m }

// id is the registry key: name plus rendered labels.
func (m *metricMeta) id() string { return m.name + "{" + m.labels + "}" }

// Registry holds a set of named metrics. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	order   []metric          // registration order, families kept adjacent
	byID    map[string]metric // name{labels} → metric
	byName  map[string]kind   // family name → kind (conflict detection)
	helpFor map[string]string // family name → first registered help
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:    make(map[string]metric),
		byName:  make(map[string]kind),
		helpFor: make(map[string]string),
	}
}

// Default is the process-wide registry used by the solver pipeline's
// package-level metrics.
var Default = NewRegistry()

// register adds m to the registry, or returns the already-registered
// metric with the same name and labels. Registering the same name with
// a different kind panics: that is a programming error no caller can
// recover from meaningfully.
func (r *Registry) register(m metric) metric {
	mm := m.meta()
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.byName[mm.name]; ok && k != mm.kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", mm.name, mm.kind, k))
	}
	if existing, ok := r.byID[mm.id()]; ok {
		return existing
	}
	r.byName[mm.name] = mm.kind
	if _, ok := r.helpFor[mm.name]; !ok {
		r.helpFor[mm.name] = mm.help
	}
	r.byID[mm.id()] = m
	// Keep families adjacent so the exposition emits one HELP/TYPE
	// block per name.
	insert := len(r.order)
	for i := len(r.order) - 1; i >= 0; i-- {
		if r.order[i].meta().name == mm.name {
			insert = i + 1
			break
		}
	}
	r.order = append(r.order, nil)
	copy(r.order[insert+1:], r.order[insert:])
	r.order[insert] = m
	return m
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	metricMeta
	v atomic.Int64
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{metricMeta: metricMeta{name: name, help: help, kind: kindCounter, labels: renderLabels(labels)}}
	return r.register(c).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) writeProm(b *strings.Builder) {
	writeSample(b, c.name, c.labels, "", fmt.Sprintf("%d", c.v.Load()))
}

func (c *Counter) value() any { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	metricMeta
	v atomic.Int64
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{metricMeta: metricMeta{name: name, help: help, kind: kindGauge, labels: renderLabels(labels)}}
	return r.register(g).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) writeProm(b *strings.Builder) {
	writeSample(b, g.name, g.labels, "", fmt.Sprintf("%d", g.v.Load()))
}

func (g *Gauge) value() any { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time — for
// quantities another component already tracks (queue depth, budget
// occupancy) where mirroring into an atomic would invite drift.
type GaugeFunc struct {
	metricMeta
	fn func() float64
}

// GaugeFunc registers a computed gauge. fn is called at every scrape
// and must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	g := &GaugeFunc{metricMeta: metricMeta{name: name, help: help, kind: kindGauge, labels: renderLabels(labels)}, fn: fn}
	return r.register(g).(*GaugeFunc)
}

func (g *GaugeFunc) writeProm(b *strings.Builder) {
	writeSample(b, g.name, g.labels, "", formatFloat(g.fn()))
}

func (g *GaugeFunc) value() any { return g.fn() }
