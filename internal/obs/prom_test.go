package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// sampleLine matches one Prometheus text-format sample:
// name{label="v",...} value
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

var headerLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)

// ValidateProm parses a text exposition and returns the set of sample
// names seen, failing the test on any malformed line. Shared with the
// serve package's golden scrape test via copy — kept here so the
// format rules live next to the writer.
func validateProm(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !headerLine.MatchString(line) {
				t.Fatalf("malformed header line: %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		names[name] = true
	}
	return names
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_requests_total", "requests served").Add(3)
	r.Counter("fmt_tier_total", "per tier", L("tier", "exact")).Add(2)
	r.Counter("fmt_tier_total", "per tier", L("tier", "bounds")).Inc()
	r.Gauge("fmt_depth", "queue depth").Set(-4)
	h := r.Histogram("fmt_latency_seconds", "latency", ExpBounds(1000, 10, 4), 1e-9)
	h.Observe(500)
	h.Observe(2_000_000)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	names := validateProm(t, body)
	for _, want := range []string{
		"fmt_requests_total", "fmt_tier_total", "fmt_depth",
		"fmt_latency_seconds_bucket", "fmt_latency_seconds_sum", "fmt_latency_seconds_count",
	} {
		if !names[want] {
			t.Errorf("exposition missing %s:\n%s", want, body)
		}
	}
	// One HELP/TYPE block per family even with two labeled members.
	if n := strings.Count(body, "# TYPE fmt_tier_total counter"); n != 1 {
		t.Errorf("fmt_tier_total TYPE header appears %d times, want 1:\n%s", n, body)
	}
	if !strings.Contains(body, `fmt_tier_total{tier="exact"} 2`) {
		t.Errorf("missing labeled sample:\n%s", body)
	}
	// Histogram invariants: cumulative buckets, +Inf == count.
	if !strings.Contains(body, `fmt_latency_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket wrong:\n%s", body)
	}
	if !strings.Contains(body, "fmt_latency_seconds_count 2") {
		t.Errorf("histogram count wrong:\n%s", body)
	}
}

func TestHandlerMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("merge_a_total", "a").Inc()
	b.Counter("merge_b_total", "b").Inc()
	rec := httptest.NewRecorder()
	Handler(a, nil, b).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	names := validateProm(t, body)
	if !names["merge_a_total"] || !names["merge_b_total"] {
		t.Fatalf("merged exposition missing a registry:\n%s", body)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5: "1.5",
		0:   "0",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	for _, s := range []string{formatFloat(inf()), formatFloat(-inf())} {
		if s != "+Inf" && s != "-Inf" {
			t.Errorf("inf formatting = %q", s)
		}
	}
}

func inf() float64 { var z float64; return 1 / z }

func ExampleRegistry_WriteProm() {
	r := NewRegistry()
	r.Counter("example_total", "an example").Add(7)
	var b strings.Builder
	_ = r.WriteProm(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total an example
	// # TYPE example_total counter
	// example_total 7
}
