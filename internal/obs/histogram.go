package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution of int64 observations.
// Observations land in the first bucket whose upper bound is >= the
// value; everything above the last bound lands in the implicit +Inf
// bucket. Observe is three atomic adds and never allocates, so
// histograms are safe on the solver's hot paths.
//
// Internally values are raw int64 units (typically nanoseconds or
// element counts); Unit scales them for exposition — a duration
// histogram stores ns and exposes seconds with Unit = 1e-9.
type Histogram struct {
	metricMeta
	bounds  []int64 // ascending upper bounds, len >= 1
	unit    float64 // exposition multiplier (0 treated as 1)
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds. unit scales raw values for
// exposition (pass 1 for dimensionless sizes, 1e-9 for ns → s).
// Panics on empty or unsorted bounds — a registration-time programming
// error.
func (r *Registry) Histogram(name, help string, bounds []int64, unit float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		metricMeta: metricMeta{name: name, help: help, kind: kindHistogram, labels: renderLabels(labels)},
		bounds:     append([]int64(nil), bounds...),
		unit:       unit,
		buckets:    make([]atomic.Int64, len(bounds)+1), // +1: +Inf overflow
	}
	return r.register(h).(*Histogram)
}

// ExpBounds builds n ascending bounds starting at start, each factor
// times the previous (rounded up so bounds stay strictly ascending
// even for small factors).
func ExpBounds(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	bounds := make([]int64, n)
	v := float64(start)
	for i := range bounds {
		b := int64(v)
		if i > 0 && b <= bounds[i-1] {
			b = bounds[i-1] + 1
		}
		bounds[i] = b
		v *= factor
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *Histogram) bucketIdx(v int64) int {
	// Linear scan: bucket counts are small (≤ ~20) and the early
	// buckets are the hot ones, so this beats binary search in practice
	// and keeps the code branch-predictable.
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Span is an in-flight timer over a histogram. It is a value type: Start
// and End allocate nothing.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Start begins a span whose End observes the elapsed nanoseconds.
func (h *Histogram) Start() Span { return Span{h: h, t0: time.Now()} }

// End observes the span's elapsed time and returns it. A zero Span is
// a no-op returning 0.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.ObserveDuration(d)
	return d
}

// HistSnapshot is a consistent-enough copy of a histogram's state:
// each field is read atomically, so totals can be off by in-flight
// observations but never corrupt. Snapshots from histograms with the
// same bounds merge additively (shard-and-merge aggregation).
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // per-bucket (non-cumulative), len(Bounds)+1 with +Inf last
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after registration
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Merge returns the additive combination of two snapshots. It panics
// if the bucket layouts differ — merging is only defined across
// shards of the same histogram shape.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histogram snapshots with different bucket layouts")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			panic("obs: merging histogram snapshots with different bucket bounds")
		}
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the p-quantile of the observations in the
// snapshot's raw units by linear interpolation inside the containing
// bucket (the standard Prometheus histogram_quantile estimator). p is
// clamped to [0,1]; an empty snapshot returns 0. Mass in the +Inf
// overflow bucket is attributed to the last finite bound — quantiles
// there are lower bounds, which is the conservative direction for an
// SLO report.
func (s HistSnapshot) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no finite upper edge to interpolate to.
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) writeProm(b *strings.Builder) {
	unit := h.unit
	if unit == 0 {
		unit = 1
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(b, h.name+"_bucket", h.labels,
			fmt.Sprintf("le=%q", formatFloat(float64(bound)*unit)), fmt.Sprintf("%d", cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(b, h.name+"_bucket", h.labels, `le="+Inf"`, fmt.Sprintf("%d", cum))
	writeSample(b, h.name+"_sum", h.labels, "", formatFloat(float64(h.sum.Load())*unit))
	// _count is the +Inf cumulative rather than the count field: the
	// two can differ transiently under concurrent observes, and the
	// exposition must keep the histogram invariant count == +Inf.
	writeSample(b, h.name+"_count", h.labels, "", fmt.Sprintf("%d", cum))
}

func (h *Histogram) value() any { return h.Snapshot() }
