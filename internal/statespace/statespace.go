// Package statespace enumerates the reduced product space the paper
// builds its level matrices over (§5.4): because tasks are iid, only
// the number of customers at each service station matters, not which
// task is where, collapsing the Kronecker space of size (servers)^K
// down to compositions — D_RP(k) = C(M+k−1, k) for M exponential
// stations.
//
// Two station kinds extend the plain composition space to phase-type
// service:
//
//   - Delay stations (dedicated servers — the paper's load-dependent
//     CPU and local-disk pools): every customer is in service at once,
//     so the state keeps a count per phase, exactly the stage-splitting
//     of §5.4.1.
//   - Queue stations (shared servers — the communication channel and
//     shared disks): FCFS with one customer in service, so the state
//     keeps the total count plus the in-service customer's phase. This
//     is the case where Jackson/product-form networks do not apply.
//
// A state is a fixed-width []int: each delay station contributes one
// slot per phase; each queue station contributes a (count, phase)
// pair. Level holds every state with exactly k customers, with a
// deterministic order and an index map, which is what the level
// matrices M_k, P_k, Q_k, R_k are built over.
package statespace

import (
	"fmt"
	"math"
	"math/big"

	"finwl/internal/obs"
)

// Enumeration metrics: level count and size are the paper's
// state-space cost drivers — D_RP(k) is what every downstream matrix
// is quadratic in — so both are observable without re-deriving the DP.
var (
	mLevels = obs.Default.Counter("finwl_statespace_levels_total",
		"Population levels enumerated.")
	mLevelStates = obs.Default.Histogram("finwl_statespace_level_states",
		"States per enumerated population level (the paper's D_RP(k)).",
		obs.ExpBounds(1, 4, 14), 1) // 1 .. ~67M states
)

// Kind distinguishes the two station state layouts.
type Kind int

const (
	// Delay is an infinite-server (dedicated) station: all customers
	// present are in service simultaneously.
	Delay Kind = iota
	// Queue is a single-server FCFS (shared) station: one customer in
	// service, the rest waiting.
	Queue
	// Multi is a c-server FCFS station (exponential service only):
	// min(n, c) customers in service — the paper's multitasking
	// extension, covering W workstations shared by more tasks.
	Multi
)

func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Queue:
		return "queue"
	case Multi:
		return "multi"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// StationShape describes how one station contributes to the state.
type StationShape struct {
	Kind    Kind
	Phases  int // number of service phases, ≥ 1
	Servers int // Multi only: parallel servers, ≥ 1
}

// Space is the state layout for a fixed set of stations.
type Space struct {
	shapes  []StationShape
	offsets []int // start of each station's segment in a state vector
	width   int   // total state vector length
}

// NewSpace builds a Space from station shapes.
func NewSpace(shapes []StationShape) *Space {
	if len(shapes) == 0 {
		panic("statespace: no stations")
	}
	s := &Space{shapes: append([]StationShape(nil), shapes...)}
	s.offsets = make([]int, len(shapes))
	for i, sh := range shapes {
		if sh.Phases < 1 {
			panic(fmt.Sprintf("statespace: station %d has %d phases", i, sh.Phases))
		}
		s.offsets[i] = s.width
		switch sh.Kind {
		case Delay:
			s.width += sh.Phases
		case Queue:
			s.width += 2
		case Multi:
			if sh.Phases != 1 {
				panic(fmt.Sprintf("statespace: multi-server station %d must be exponential (1 phase), got %d", i, sh.Phases))
			}
			if sh.Servers < 1 {
				panic(fmt.Sprintf("statespace: multi-server station %d needs >= 1 servers", i))
			}
			s.width++
		default:
			panic(fmt.Sprintf("statespace: unknown kind %v", sh.Kind))
		}
	}
	return s
}

// Stations returns the number of stations.
func (s *Space) Stations() int { return len(s.shapes) }

// Shape returns station st's shape.
func (s *Space) Shape(st int) StationShape { return s.shapes[st] }

// Width returns the state vector length.
func (s *Space) Width() int { return s.width }

// CustomersAt returns the number of customers at station st in state.
func (s *Space) CustomersAt(state []int, st int) int {
	off := s.offsets[st]
	switch s.shapes[st].Kind {
	case Delay:
		n := 0
		for p := 0; p < s.shapes[st].Phases; p++ {
			n += state[off+p]
		}
		return n
	default: // Queue and Multi keep the count in the first slot
		return state[off]
	}
}

// TotalCustomers returns the number of customers in the whole state.
func (s *Space) TotalCustomers(state []int) int {
	n := 0
	for st := range s.shapes {
		n += s.CustomersAt(state, st)
	}
	return n
}

// DelayCount returns the number of customers in phase ph of delay
// station st.
func (s *Space) DelayCount(state []int, st, ph int) int {
	if s.shapes[st].Kind != Delay {
		panic("statespace: DelayCount on a queue station")
	}
	return state[s.offsets[st]+ph]
}

// QueueCount returns the number of customers at queue station st.
func (s *Space) QueueCount(state []int, st int) int {
	if s.shapes[st].Kind != Queue {
		panic("statespace: QueueCount on a delay station")
	}
	return state[s.offsets[st]]
}

// QueuePhase returns the in-service phase at queue station st; it is
// meaningful only when the station is non-empty (0 otherwise).
func (s *Space) QueuePhase(state []int, st int) int {
	if s.shapes[st].Kind != Queue {
		panic("statespace: QueuePhase on a delay station")
	}
	return state[s.offsets[st]+1]
}

// SetDelayCount sets the phase-ph customer count of delay station st.
func (s *Space) SetDelayCount(state []int, st, ph, n int) {
	state[s.offsets[st]+ph] = n
}

// SetQueue sets queue station st's count and in-service phase. The
// phase of an empty station is canonicalized to 0.
func (s *Space) SetQueue(state []int, st, n, ph int) {
	if n == 0 {
		ph = 0
	}
	state[s.offsets[st]] = n
	state[s.offsets[st]+1] = ph
}

// MultiCount returns the number of customers at multi-server station
// st.
func (s *Space) MultiCount(state []int, st int) int {
	if s.shapes[st].Kind != Multi {
		panic("statespace: MultiCount on a non-multi station")
	}
	return state[s.offsets[st]]
}

// SetMultiCount sets the customer count of multi-server station st.
func (s *Space) SetMultiCount(state []int, st, n int) {
	if s.shapes[st].Kind != Multi {
		panic("statespace: SetMultiCount on a non-multi station")
	}
	state[s.offsets[st]] = n
}

// Key returns a canonical map key for a state. Counts are assumed to
// fit a byte segment count of up to 255 per slot, far beyond any
// feasible population for a dense model.
func (s *Space) Key(state []int) string {
	b := make([]byte, len(state))
	for i, v := range state {
		if v < 0 || v > 255 {
			panic(fmt.Sprintf("statespace: slot value %d out of key range", v))
		}
		b[i] = byte(v)
	}
	return string(b)
}

// Level is the enumerated set of states holding exactly K customers.
// The states live in one contiguous slab in lexicographically
// ascending order — an invariant of the enumeration recursion that
// Enumerate verifies — so lookups are allocation-free binary searches
// instead of string-keyed map probes.
type Level struct {
	Space  *Space
	K      int
	slab   []int // all state vectors, row-major, lexicographic order
	states [][]int
	// keys packs each state into one uint64 (big-endian, one byte per
	// slot) when the layout permits — slot values are then comparable
	// as single integers and Index degenerates to a binary search over
	// machine words. nil when width > 8 or a slot value exceeds 255.
	keys []uint64
}

// packState folds a state into its order-preserving uint64 key: one
// big-endian byte per slot, so uint64 comparison equals lexicographic
// slot comparison. Only valid when every slot fits a byte and the
// width fits the word.
func packState(state []int) uint64 {
	var k uint64
	for _, v := range state {
		k = k<<8 | uint64(v)
	}
	return k
}

// Enumerate lists every state with exactly k customers, in
// lexicographically ascending order.
func (s *Space) Enumerate(k int) *Level {
	if k < 0 {
		panic("statespace: negative population")
	}
	l := &Level{Space: s, K: k}
	// LevelSize is exact, so the slab never reallocates mid-append and
	// the row headers can be cut once, after the recursion.
	if n := s.LevelSize(k); satMul(n, int64(s.width)) < int64(1)<<40 {
		l.slab = make([]int, 0, int(n)*s.width)
	}
	state := make([]int, s.width)
	l.enumerate(state, 0, k)
	n := len(l.slab) / s.width
	l.states = make([][]int, n)
	packable := s.width <= 8 && k <= 255
	for _, sh := range s.shapes {
		if sh.Phases > 256 {
			packable = false
		}
	}
	if packable {
		l.keys = make([]uint64, n)
	}
	for i := range l.states {
		l.states[i] = l.slab[i*s.width : (i+1)*s.width : (i+1)*s.width]
		if i > 0 && compareStates(l.states[i-1], l.states[i]) >= 0 {
			panic(fmt.Sprintf("statespace: enumeration order broken at level %d, state %d", k, i))
		}
		if packable {
			l.keys[i] = packState(l.states[i])
		}
	}
	mLevels.Inc()
	mLevelStates.Observe(int64(len(l.states)))
	return l
}

// compareStates is the lexicographic order the enumeration emits
// states in; Index binary-searches against it.
func compareStates(a, b []int) int {
	for i, av := range a {
		if av != b[i] {
			if av < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func (l *Level) enumerate(state []int, st, remaining int) {
	s := l.Space
	if st == len(s.shapes) {
		if remaining == 0 {
			l.slab = append(l.slab, state...)
		}
		return
	}
	sh := s.shapes[st]
	off := s.offsets[st]
	switch sh.Kind {
	case Delay:
		l.enumerateDelay(state, st, off, 0, remaining)
	case Queue:
		for n := 0; n <= remaining; n++ {
			state[off] = n
			if n == 0 {
				state[off+1] = 0
				l.enumerate(state, st+1, remaining)
			} else {
				for ph := 0; ph < sh.Phases; ph++ {
					state[off+1] = ph
					l.enumerate(state, st+1, remaining-n)
				}
			}
		}
		state[off], state[off+1] = 0, 0
	case Multi:
		for n := 0; n <= remaining; n++ {
			state[off] = n
			l.enumerate(state, st+1, remaining-n)
		}
		state[off] = 0
	}
}

// enumerateDelay distributes up to `remaining` customers over the
// phases of delay station st starting at phase index ph.
func (l *Level) enumerateDelay(state []int, st, off, ph, remaining int) {
	s := l.Space
	m := s.shapes[st].Phases
	if ph == m-1 {
		// Last phase takes any count 0..remaining; the rest of the
		// network gets what is left.
		for n := 0; n <= remaining; n++ {
			state[off+ph] = n
			l.enumerate(state, st+1, remaining-n)
		}
		state[off+ph] = 0
		return
	}
	for n := 0; n <= remaining; n++ {
		state[off+ph] = n
		l.enumerateDelay(state, st, off, ph+1, remaining-n)
	}
	state[off+ph] = 0
}

// Count returns the number of states at this level, D(k).
func (l *Level) Count() int { return len(l.states) }

// State returns state i. The returned slice is shared; callers must
// copy before mutating.
func (l *Level) State(i int) []int { return l.states[i] }

// Index returns the position of a state, or −1 if it is not a state
// of this level. It is an allocation-free binary search over the
// lexicographically sorted state slab — the hot lookup of level-matrix
// construction, called once per generated transition.
func (l *Level) Index(state []int) int {
	if l.keys != nil {
		// Packed fast path: one word comparison per probe instead of a
		// slot-by-slot slice walk.
		key := packState(state)
		keys := l.keys
		lo, hi := 0, len(keys)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if keys[mid] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(keys) && keys[lo] == key {
			return lo
		}
		return -1
	}
	lo, hi := 0, len(l.states)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareStates(l.states[mid], state) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.states) && compareStates(l.states[lo], state) == 0 {
		return lo
	}
	return -1
}

// MustIndex is Index that panics on a miss; transition construction
// uses it because every generated target must exist by construction.
func (l *Level) MustIndex(state []int) int {
	i := l.Index(state)
	if i < 0 {
		panic(fmt.Sprintf("statespace: state %v not found at level %d", state, l.K))
	}
	return i
}

// Compositions returns C(m+k−1, k), the number of ways to place k
// indistinguishable customers at m stations — the paper's D_RP(k).
// Counts beyond int64 range saturate at math.MaxInt64.
func Compositions(m, k int) int {
	return int(binomial(m+k-1, k))
}

// KroneckerSize returns servers^k, the size of the unreduced product
// space the paper contrasts with (§5.4): each of the k distinguishable
// tasks independently occupies one of the servers.
func KroneckerSize(servers, k int) *big.Int {
	return new(big.Int).Exp(big.NewInt(int64(servers)), big.NewInt(int64(k)), nil)
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	b := big.NewInt(0).Binomial(int64(n), int64(k))
	if !b.IsInt64() {
		return math.MaxInt64
	}
	return b.Int64()
}

// satAdd and satMul are int64 arithmetic saturating at math.MaxInt64,
// so size estimates of absurd state spaces stay ordered instead of
// wrapping around.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// ChainPrice is the admission cost of one exact transient solve over
// this space: the dense-chain entry count Σ_k (d_k² + 2·d_k·d_{k−1} +
// d_k) for populations 1..maxK, computed from the LevelSize DP before
// anything is allocated. It saturates at MaxPrice so absurd models
// stay ordered instead of overflowing.
func (s *Space) ChainPrice(maxK int) int64 {
	var total float64
	prev := float64(s.LevelSize(0))
	for k := 1; k <= maxK; k++ {
		d := float64(s.LevelSize(k))
		total += d*d + 2*d*prev + d
		prev = d
	}
	if total >= float64(MaxPrice) {
		return MaxPrice
	}
	return int64(total)
}

// SweepPrice is the group admission cost of a batched sweep over this
// space: one chain (ChainPrice — built and factored exactly once for
// the whole group) plus, for every drain checkpoint beyond the first,
// the Σ_k d_k states a drain pass walks with the already-factored
// levels. The chain term dominates by a factor of d, reflecting that
// adding a population to an existing group is far cheaper than
// admitting a new network — which is exactly the sharing the batch
// scheduler exists to exploit.
func (s *Space) SweepPrice(maxK, checkpoints int) int64 {
	price := s.ChainPrice(maxK)
	if checkpoints <= 1 {
		return price
	}
	var drain int64
	for k := 1; k <= maxK; k++ {
		drain = satAdd(drain, s.LevelSize(k))
	}
	extra := satMul(int64(checkpoints-1), drain)
	if price > MaxPrice-extra {
		return MaxPrice
	}
	return price + extra
}

// MaxPrice is the saturation bound of ChainPrice and SweepPrice.
const MaxPrice = int64(1) << 62

// stationWays returns the number of distinct station states holding
// exactly n customers: compositions over the phases for a delay
// station, (count, in-service phase) pairs for a queue, and a bare
// count for a multi-server station.
func (s *Space) stationWays(st, n int) int64 {
	sh := s.shapes[st]
	switch sh.Kind {
	case Delay:
		return binomial(n+sh.Phases-1, sh.Phases-1)
	case Queue:
		if n == 0 {
			return 1
		}
		return int64(sh.Phases)
	default: // Multi
		return 1
	}
}

// LevelSize returns D(k), the exact number of states at population k,
// computed by a convolution over stations without enumerating anything
// — the O(stations·k²) counting pass that lets callers reject a state
// space that would exhaust memory before allocating any of it. Counts
// beyond int64 range saturate at math.MaxInt64.
func (s *Space) LevelSize(k int) int64 {
	if k < 0 {
		return 0
	}
	dp := make([]int64, k+1)
	dp[0] = 1
	next := make([]int64, k+1)
	for st := range s.shapes {
		for n := range next {
			next[n] = 0
		}
		for have := 0; have <= k; have++ {
			if dp[have] == 0 {
				continue
			}
			for add := 0; have+add <= k; add++ {
				if w := s.stationWays(st, add); w != 0 {
					next[have+add] = satAdd(next[have+add], satMul(dp[have], w))
				}
			}
		}
		dp, next = next, dp
	}
	return dp[k]
}
