package statespace

import "testing"

func BenchmarkEnumerateCentralK8(b *testing.B) {
	sp := NewSpace([]StationShape{
		{Kind: Delay, Phases: 1},
		{Kind: Delay, Phases: 1},
		{Kind: Queue, Phases: 1},
		{Kind: Queue, Phases: 2},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.Enumerate(8)
	}
}

func BenchmarkEnumerateDistributedK6(b *testing.B) {
	shapes := []StationShape{{Kind: Delay, Phases: 1}}
	for i := 0; i < 6; i++ {
		shapes = append(shapes, StationShape{Kind: Queue, Phases: 2})
	}
	shapes = append(shapes, StationShape{Kind: Queue, Phases: 1})
	sp := NewSpace(shapes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.Enumerate(6)
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	sp := NewSpace([]StationShape{
		{Kind: Delay, Phases: 2},
		{Kind: Queue, Phases: 2},
		{Kind: Queue, Phases: 1},
	})
	lvl := sp.Enumerate(6)
	states := make([][]int, lvl.Count())
	for i := range states {
		states[i] = lvl.State(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lvl.Index(states[i%len(states)])
	}
}
