package statespace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allDelayExp(m int) *Space {
	shapes := make([]StationShape, m)
	for i := range shapes {
		shapes[i] = StationShape{Kind: Delay, Phases: 1}
	}
	return NewSpace(shapes)
}

func TestCompositionsKnown(t *testing.T) {
	// Paper §5.4: the central cluster reduces to M=4 servers with
	// D_RP(k) = C(k+3, k); the distributed cluster with K=5 has
	// K+2 = 7 stations; 2K+1 = 11 is the pre-reduction server count.
	for _, c := range []struct{ m, k, want int }{
		{4, 1, 4}, {4, 2, 10}, {4, 5, 56}, {4, 8, 165},
		{7, 5, 462}, {1, 10, 1}, {3, 0, 1}, {11, 5, 3003},
	} {
		if got := Compositions(c.m, c.k); got != c.want {
			t.Errorf("Compositions(%d,%d) = %d, want %d", c.m, c.k, got, c.want)
		}
	}
}

func TestEnumerateMatchesCompositionCount(t *testing.T) {
	for m := 1; m <= 5; m++ {
		for k := 0; k <= 6; k++ {
			sp := allDelayExp(m)
			lvl := sp.Enumerate(k)
			if got, want := lvl.Count(), Compositions(m, k); got != want {
				t.Errorf("m=%d k=%d: enumerated %d states, want %d", m, k, got, want)
			}
		}
	}
}

func TestEnumerateQueuePhases(t *testing.T) {
	// One H2 queue station alone: states at level k>0 are (k, ph) for
	// ph in {0,1} → 2 states; level 0 → 1 state.
	sp := NewSpace([]StationShape{{Kind: Queue, Phases: 2}})
	if got := sp.Enumerate(0).Count(); got != 1 {
		t.Fatalf("level 0 count = %d, want 1", got)
	}
	for k := 1; k <= 4; k++ {
		if got := sp.Enumerate(k).Count(); got != 2 {
			t.Fatalf("level %d count = %d, want 2", k, got)
		}
	}
}

func TestEnumerateMixed(t *testing.T) {
	// Delay(2 phases) + Queue(2 phases), k=2.
	// Count by cases on queue occupancy n:
	//  n=0: delay holds 2 over 2 phases → C(3,2)=3 states
	//  n=1: 2 queue phases × delay holds 1 over 2 phases (2) → 4
	//  n=2: 2 queue phases × delay empty → 2
	// total 9.
	sp := NewSpace([]StationShape{
		{Kind: Delay, Phases: 2},
		{Kind: Queue, Phases: 2},
	})
	if got := sp.Enumerate(2).Count(); got != 9 {
		t.Fatalf("mixed count = %d, want 9", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	sp := NewSpace([]StationShape{
		{Kind: Delay, Phases: 3},
		{Kind: Queue, Phases: 2},
		{Kind: Queue, Phases: 1},
	})
	lvl := sp.Enumerate(4)
	for i := 0; i < lvl.Count(); i++ {
		st := lvl.State(i)
		if sp.TotalCustomers(st) != 4 {
			t.Fatalf("state %v has %d customers, want 4", st, sp.TotalCustomers(st))
		}
		if got := lvl.Index(st); got != i {
			t.Fatalf("Index(State(%d)) = %d", i, got)
		}
	}
}

func TestIndexMissReturnsMinusOne(t *testing.T) {
	sp := allDelayExp(2)
	lvl := sp.Enumerate(2)
	if got := lvl.Index([]int{3, 0}); got != -1 {
		t.Fatalf("Index of foreign state = %d, want -1", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	sp := allDelayExp(2)
	lvl := sp.Enumerate(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing state did not panic")
		}
	}()
	lvl.MustIndex([]int{9, 9})
}

func TestAccessors(t *testing.T) {
	sp := NewSpace([]StationShape{
		{Kind: Delay, Phases: 2},
		{Kind: Queue, Phases: 3},
	})
	state := make([]int, sp.Width())
	sp.SetDelayCount(state, 0, 0, 2)
	sp.SetDelayCount(state, 0, 1, 1)
	sp.SetQueue(state, 1, 4, 2)
	if sp.CustomersAt(state, 0) != 3 {
		t.Fatalf("delay customers = %d", sp.CustomersAt(state, 0))
	}
	if sp.DelayCount(state, 0, 1) != 1 {
		t.Fatal("DelayCount wrong")
	}
	if sp.QueueCount(state, 1) != 4 || sp.QueuePhase(state, 1) != 2 {
		t.Fatal("queue accessors wrong")
	}
	if sp.TotalCustomers(state) != 7 {
		t.Fatalf("total = %d, want 7", sp.TotalCustomers(state))
	}
	// Emptying a queue canonicalizes phase to 0.
	sp.SetQueue(state, 1, 0, 2)
	if sp.QueuePhase(state, 1) != 0 {
		t.Fatal("empty queue phase not canonicalized")
	}
}

func TestKindAccessorPanics(t *testing.T) {
	sp := NewSpace([]StationShape{{Kind: Delay, Phases: 1}, {Kind: Queue, Phases: 1}})
	state := make([]int, sp.Width())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DelayCount on queue", func() { sp.DelayCount(state, 1, 0) })
	mustPanic("QueueCount on delay", func() { sp.QueueCount(state, 0) })
	mustPanic("QueuePhase on delay", func() { sp.QueuePhase(state, 0) })
}

func TestMultiStation(t *testing.T) {
	sp := NewSpace([]StationShape{
		{Kind: Multi, Phases: 1, Servers: 2},
		{Kind: Delay, Phases: 1},
	})
	// Multi contributes one slot: D(k) = k+1 compositions over 2 slots.
	for k := 0; k <= 4; k++ {
		if got, want := sp.Enumerate(k).Count(), k+1; got != want {
			t.Fatalf("k=%d: count %d, want %d", k, got, want)
		}
	}
	state := make([]int, sp.Width())
	sp.SetMultiCount(state, 0, 3)
	if sp.MultiCount(state, 0) != 3 || sp.CustomersAt(state, 0) != 3 {
		t.Fatal("multi accessors wrong")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MultiCount on delay", func() { sp.MultiCount(state, 1) })
	mustPanic("SetMultiCount on delay", func() { sp.SetMultiCount(state, 1, 1) })
	mustPanic("multi with phases", func() {
		NewSpace([]StationShape{{Kind: Multi, Phases: 2, Servers: 2}})
	})
	mustPanic("multi without servers", func() {
		NewSpace([]StationShape{{Kind: Multi, Phases: 1}})
	})
}

func TestKroneckerSize(t *testing.T) {
	// Paper: central cluster of K workstations needs (2K+1)^K states
	// in the unreduced formulation; K=5 → 11^5 = 161051.
	if got := KroneckerSize(11, 5).Int64(); got != 161051 {
		t.Fatalf("KroneckerSize(11,5) = %d", got)
	}
}

// Property: enumeration count is composition-multiplicative across a
// random mix of stations: D(k) = Σ over per-station splits. We verify
// against a direct convolution computed independently.
func TestEnumerateCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSt := 1 + r.Intn(4)
		shapes := make([]StationShape, nSt)
		for i := range shapes {
			if r.Intn(2) == 0 {
				shapes[i] = StationShape{Kind: Delay, Phases: 1 + r.Intn(3)}
			} else {
				shapes[i] = StationShape{Kind: Queue, Phases: 1 + r.Intn(3)}
			}
		}
		k := r.Intn(5)
		sp := NewSpace(shapes)
		// Independent count: convolve per-station state counts.
		counts := make([]int, k+1) // counts[j] = states for j customers so far
		counts[0] = 1
		for _, sh := range shapes {
			next := make([]int, k+1)
			for have := 0; have <= k; have++ {
				if counts[have] == 0 {
					continue
				}
				for add := 0; have+add <= k; add++ {
					var ways int
					switch sh.Kind {
					case Delay:
						ways = Compositions(sh.Phases, add)
					case Queue:
						if add == 0 {
							ways = 1
						} else {
							ways = sh.Phases
						}
					}
					next[have+add] += counts[have] * ways
				}
			}
			counts = next
		}
		return sp.Enumerate(k).Count() == counts[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: states are unique and indices are a bijection.
func TestEnumerateUniqueProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp := NewSpace([]StationShape{
			{Kind: Delay, Phases: 1 + r.Intn(3)},
			{Kind: Queue, Phases: 1 + r.Intn(3)},
			{Kind: Delay, Phases: 1},
		})
		lvl := sp.Enumerate(1 + r.Intn(5))
		seen := map[string]bool{}
		for i := 0; i < lvl.Count(); i++ {
			k := sp.Key(lvl.State(i))
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LevelSize prices a level exactly — it must equal the count
// of an actual enumeration for every shape mix it prices.
func TestLevelSizeMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSt := 1 + r.Intn(4)
		shapes := make([]StationShape, nSt)
		for i := range shapes {
			switch r.Intn(3) {
			case 0:
				shapes[i] = StationShape{Kind: Delay, Phases: 1 + r.Intn(3)}
			case 1:
				shapes[i] = StationShape{Kind: Queue, Phases: 1 + r.Intn(3)}
			default:
				shapes[i] = StationShape{Kind: Multi, Phases: 1, Servers: 1 + r.Intn(4)}
			}
		}
		sp := NewSpace(shapes)
		k := r.Intn(6)
		return sp.LevelSize(k) == int64(sp.Enumerate(k).Count())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSizeSaturates(t *testing.T) {
	// 8 delay stations with 8 phases each: level 200 has an
	// astronomically large count; LevelSize must clamp, not overflow.
	shapes := make([]StationShape, 8)
	for i := range shapes {
		shapes[i] = StationShape{Kind: Delay, Phases: 8}
	}
	sp := NewSpace(shapes)
	got := sp.LevelSize(200)
	if got != math.MaxInt64 {
		t.Fatalf("LevelSize(200) = %d, want saturation at MaxInt64", got)
	}
}

// ChainPrice is the reference Σ_k d_k²+2·d_k·d_{k−1}+d_k sum, and
// SweepPrice adds one Σ_k d_k drain walk per extra checkpoint on top
// of the shared chain — never a whole extra chain.
func TestChainAndSweepPrice(t *testing.T) {
	sp := allDelayExp(4)
	var want float64
	prev := float64(sp.LevelSize(0))
	var drain int64
	for k := 1; k <= 6; k++ {
		d := float64(sp.LevelSize(k))
		want += d*d + 2*d*prev + d
		prev = d
		drain += sp.LevelSize(k)
	}
	got := sp.ChainPrice(6)
	if got != int64(want) {
		t.Fatalf("ChainPrice(6) = %d, want %d", got, int64(want))
	}
	for _, checkpoints := range []int{0, 1} {
		if p := sp.SweepPrice(6, checkpoints); p != got {
			t.Fatalf("SweepPrice(6,%d) = %d, want ChainPrice %d", checkpoints, p, got)
		}
	}
	if p := sp.SweepPrice(6, 5); p != got+4*drain {
		t.Fatalf("SweepPrice(6,5) = %d, want %d", p, got+4*drain)
	}
	// Sharing must be visibly cheaper than separate admissions: J jobs
	// priced as one sweep cost less than J priced chains.
	if j := int64(5); sp.SweepPrice(6, 5) >= j*got {
		t.Fatalf("SweepPrice(6,5) = %d not cheaper than 5 chains %d", sp.SweepPrice(6, 5), j*got)
	}
}

func TestPriceSaturates(t *testing.T) {
	sp := allDelayExp(24)
	if got := sp.ChainPrice(200); got != MaxPrice {
		t.Fatalf("huge ChainPrice = %d, want MaxPrice", got)
	}
	if got := sp.SweepPrice(200, 1_000_000); got != MaxPrice {
		t.Fatalf("huge SweepPrice = %d, want MaxPrice", got)
	}
}
