package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"finwl/internal/core"
	"finwl/internal/workload"
)

func approx(t *testing.T, got, want, relTol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// The central cluster must reproduce the paper's time-component
// vector pV = [C·X, (1−C)·X, B·Y, Y].
func TestCentralTimeComponents(t *testing.T) {
	app := workload.Default(30)
	net, err := Central(5, app, Dists{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := net.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tc[0], app.C*app.X, 1e-9, "CPU time C·X")
	approx(t, tc[1], (1-app.C)*app.X, 1e-9, "disk time (1−C)·X")
	approx(t, tc[2], app.B*app.Y, 1e-9, "comm time B·Y")
	approx(t, tc[3], app.Y, 1e-9, "remote time Y")
	approx(t, net.AsPH().Mean(), app.SingleTaskTime(), 1e-9, "single-task E(T)")
}

// The calibration holds for any shape choice — time components depend
// only on means.
func TestCentralTimeComponentsWithPhases(t *testing.T) {
	app := workload.Default(30)
	net, err := Central(5, app, Dists{
		CPU:    ErlangStages(3),
		Remote: WithCV2(25),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := net.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tc[0], app.C*app.X, 1e-9, "CPU time with Erlang")
	approx(t, tc[3], app.Y, 1e-9, "remote time with H2")
}

func TestDistributedTimeComponents(t *testing.T) {
	app := workload.Default(30)
	k := 4
	net, err := Distributed(k, app, Dists{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := net.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tc[0], app.C*app.X, 1e-9, "CPU time")
	diskTotal := (1-app.C)*app.X + app.Y
	for i := 1; i <= k; i++ {
		approx(t, tc[i], diskTotal/float64(k), 1e-9, "per-disk time")
	}
	approx(t, tc[k+1], app.B*app.Y, 1e-9, "comm time")
}

func TestDeriveCentralFormulas(t *testing.T) {
	app := workload.Default(10)
	p, err := DeriveCentral(app)
	if err != nil {
		t.Fatal(err)
	}
	// Invert the paper's formulas: q = t_cpu/(C·X),
	// p1 = q(1−C)X/(t_d(1−q)), p2 = q·Y/(t_rd(1−q)).
	approx(t, p.Q, p.TCPU/(app.C*app.X), 1e-12, "q")
	approx(t, p.P1, p.Q*(1-app.C)*app.X/(p.TDisk*(1-p.Q)), 1e-12, "p1")
	approx(t, p.P2, p.Q*app.Y/(p.TRD*(1-p.Q)), 1e-12, "p2")
	approx(t, p.P1+p.P2, 1, 1e-12, "p1+p2")
}

func TestCentralRejectsBadInput(t *testing.T) {
	app := workload.Default(10)
	if _, err := Central(0, app, Dists{}, Options{}); err == nil {
		t.Fatal("accepted k=0")
	}
	bad := app
	bad.C = 1.5
	if _, err := Central(2, bad, Dists{}, Options{}); err == nil {
		t.Fatal("accepted C out of range")
	}
	if _, err := Distributed(0, app, Dists{}); err == nil {
		t.Fatal("distributed accepted k=0")
	}
}

func TestRemoteAsDelayOption(t *testing.T) {
	app := workload.Default(10)
	net, err := Central(3, app, Dists{}, Options{RemoteAsDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Stations[3].Kind.String(); got != "delay" {
		t.Fatalf("remote kind = %s, want delay", got)
	}
	// Insensitivity: with every shared server removed from contention
	// (remote as delay) the steady state must not depend on the remote
	// distribution — but the comm queue is still shared, so compare
	// with comm load kept tiny.
	light := app
	light.B = 1e-6
	mkTss := func(remote Dist) float64 {
		n, err := Central(3, light, Dists{Remote: remote}, Options{RemoteAsDelay: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSolver(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			t.Fatal(err)
		}
		return tss
	}
	if e, h := mkTss(Exponential), mkTss(WithCV2(40)); math.Abs(e-h)/e > 1e-6 {
		t.Fatalf("no-contention steady state sensitive to distribution: exp %v vs H2 %v", e, h)
	}
}

// Solving the default workload end to end: the job takes longer on
// fewer machines, and never less than work/K or the serial bound.
func TestCentralEndToEndSanity(t *testing.T) {
	app := workload.Default(20)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		net, err := Central(k, app, Dists{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			t.Fatal(err)
		}
		total, err := s.TotalTime(app.N)
		if err != nil {
			t.Fatal(err)
		}
		if total >= prev {
			t.Fatalf("K=%d: total %v not faster than smaller cluster %v", k, total, prev)
		}
		// Can never beat perfect speedup on the task service times.
		if lower := app.SingleTaskTime() * float64(app.N) / float64(k) * 0.5; total < lower {
			t.Fatalf("K=%d: total %v impossibly fast", k, total)
		}
		prev = total
	}
}

// Property: calibration identities hold across random valid apps.
func TestDeriveCentralProperty(t *testing.T) {
	f := func(xSeed, cSeed, ySeed uint16) bool {
		app := workload.App{
			N:          10,
			X:          0.5 + float64(xSeed%100)/10,
			C:          0.1 + 0.8*float64(cSeed%100)/100,
			Y:          0.1 + float64(ySeed%100)/10,
			B:          0.25,
			Cycles:     8,
			RemoteFrac: 0.4,
		}
		p, err := DeriveCentral(app)
		if err != nil {
			return false
		}
		visits := (1 - p.Q) / p.Q
		lhs := p.TCPU/p.Q + p.TDisk*p.P1*visits + p.TComm*p.P2*visits + p.TRD*p.P2*visits
		return math.Abs(lhs-app.SingleTaskTime()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := workload.Default(5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []workload.App{
		{N: 0, X: 1, C: 0.5, Y: 1, B: 0.1, Cycles: 2, RemoteFrac: 0.5},
		{N: 1, X: 0, C: 0.5, Y: 1, B: 0.1, Cycles: 2, RemoteFrac: 0.5},
		{N: 1, X: 1, C: 0, Y: 1, B: 0.1, Cycles: 2, RemoteFrac: 0.5},
		{N: 1, X: 1, C: 0.5, Y: -1, B: 0.1, Cycles: 2, RemoteFrac: 0.5},
		{N: 1, X: 1, C: 0.5, Y: 1, B: -0.1, Cycles: 2, RemoteFrac: 0.5},
		{N: 1, X: 1, C: 0.5, Y: 1, B: 0.1, Cycles: 0.5, RemoteFrac: 0.5},
		{N: 1, X: 1, C: 0.5, Y: 1, B: 0.1, Cycles: 2, RemoteFrac: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestCentralMultitask(t *testing.T) {
	app := workload.Default(20)
	net, k, err := CentralMultitask(3, 2, app, Dists{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 6 {
		t.Fatalf("K = %d, want 6", k)
	}
	if got := net.Stations[0].Kind.String(); got != "multi" {
		t.Fatalf("CPU kind = %s, want multi", got)
	}
	if net.Stations[0].Servers != 3 || net.Stations[1].Servers != 3 {
		t.Fatal("CPU/disk pools should have 3 servers")
	}
	// degree 1 keeps the plain delay-pool model.
	net1, k1, err := CentralMultitask(3, 1, app, Dists{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != 3 || net1.Stations[0].Kind.String() != "delay" {
		t.Fatal("degree 1 should return the plain central model")
	}
	// Calibration: single-task time components unchanged by pooling.
	tc, err := net.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tc[0], app.C*app.X, 1e-9, "multitask CPU time")
	// Erlang CPUs cannot multiprogram in this model.
	if _, _, err := CentralMultitask(3, 2, app, Dists{CPU: ErlangStages(2)}, Options{}); err == nil {
		t.Fatal("accepted PH CPU with multitasking")
	}
	if _, _, err := CentralMultitask(0, 2, app, Dists{}, Options{}); err == nil {
		t.Fatal("accepted w=0")
	}
}

func TestWorkloadDerived(t *testing.T) {
	app := workload.Default(30)
	approx(t, app.SingleTaskTime(), 12, 1e-12, "default E(T)")
	approx(t, app.Q(), 0.1, 1e-12, "q")
	approx(t, app.SerialTime(), 30*(app.X+app.Y), 1e-12, "serial time")
	low := workload.LowContention(30)
	approx(t, low.SingleTaskTime(), 12, 1e-12, "low-contention E(T)")
}
