package cluster

import (
	"math"
	"testing"

	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/workload"
)

func TestSchedOverheadStage(t *testing.T) {
	app := workload.Default(10)
	net, err := Central(3, app, Dists{}, Options{SchedOverhead: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Stations) != 5 {
		t.Fatalf("stations %d, want 5 (with sched stage)", len(net.Stations))
	}
	if net.Stations[4].Name != "Sched" || net.Stations[4].Kind.String() != "delay" {
		t.Fatalf("sched stage wrong: %+v", net.Stations[4])
	}
	if net.Entry[4] != 1 {
		t.Fatal("entry should move to the sched stage")
	}
	// Single-task flow time gains exactly the overhead (delay stage,
	// visited once).
	tc, err := net.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc[4]-0.4) > 1e-9 {
		t.Fatalf("sched time component %v, want 0.4", tc[4])
	}
	if math.Abs(net.AsPH().Mean()-(app.SingleTaskTime()+0.4)) > 1e-9 {
		t.Fatal("single-task time should grow by the overhead")
	}

	// Shared scheduler variant is a queue.
	netQ, err := Central(3, app, Dists{}, Options{SchedOverhead: 0.4, SchedShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if netQ.Stations[4].Kind.String() != "queue" {
		t.Fatal("shared sched should be a queue")
	}

	// Overhead slows the job; the shared variant at least as much.
	base, err := core.NewSolver(mustNet(t, app, Options{}), 3)
	if err != nil {
		t.Fatal(err)
	}
	withOv, err := core.NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	withQ, err := core.NewSolver(netQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.TotalTime(app.N)
	o, _ := withOv.TotalTime(app.N)
	qv, _ := withQ.TotalTime(app.N)
	if !(b < o && o <= qv) {
		t.Fatalf("expected base %v < per-node %v <= shared %v", b, o, qv)
	}
}

func mustNet(t *testing.T, app workload.App, opts Options) *network.Network {
	t.Helper()
	net, err := Central(3, app, Dists{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
