// Package cluster builds the paper's two cluster architectures as
// networks ready for the transient solver:
//
//   - Central (§5.4): K workstations with private CPUs and disks plus
//     one shared communication channel and one central storage server.
//     The reduced model has four stations — a CPU delay pool, a local
//     disk delay pool, a Comm queue and a RemoteDisk queue.
//   - Distributed (§5.5): the shared data is spread over the K
//     workstation disks, so each disk is a shared queue of its own —
//     K+2 stations.
//
// Device service times are calibrated from the application model so
// that a lone task's time components come out to [C·X, (1−C)·X, B·Y,
// Y] exactly as §5.4 prescribes: q = t_cpu/(C·X),
// p₁ = q·(1−C)·X/(t_d·(1−q)), p₂ = q·Y/(t_rd·(1−q)).
package cluster

import (
	"fmt"

	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// Dist makes a service distribution with a given mean. The cluster
// builders compute each device's mean service time from the
// application model and pass it here, so a Dist chooses only the
// *shape* (exponential, Erlang, H2, …). A Dist reports invalid
// parameters (its own, or a mean the calibration should never have
// produced) as an error, which the builders propagate.
type Dist func(mean float64) (*phase.PH, error)

// Exponential is the default service shape.
func Exponential(mean float64) (*phase.PH, error) { return phase.ExpoMean(mean) }

// WithCV2 returns a Dist with the given squared coefficient of
// variation (Erlang below 1, exponential at 1, balanced H2 above 1).
func WithCV2(cv2 float64) Dist {
	return func(mean float64) (*phase.PH, error) { return phase.FitCV2(mean, cv2) }
}

// ErlangStages returns a Dist that is Erlang with a fixed stage count.
func ErlangStages(m int) Dist {
	return func(mean float64) (*phase.PH, error) { return phase.ErlangMean(m, mean) }
}

// service invokes d for one station and attributes any failure to it.
func service(station string, d Dist, mean float64) (*phase.PH, error) {
	ph, err := d(mean)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s service: %w", station, err)
	}
	return ph, nil
}

// Dists selects the service shape of each cluster component. Nil
// fields default to Exponential.
type Dists struct {
	CPU    Dist
	Disk   Dist // central model's local-disk pool
	Comm   Dist
	Remote Dist // central: the shared storage server; distributed: every disk
}

func (d Dists) orDefault() Dists {
	if d.CPU == nil {
		d.CPU = Exponential
	}
	if d.Disk == nil {
		d.Disk = Exponential
	}
	if d.Comm == nil {
		d.Comm = Exponential
	}
	if d.Remote == nil {
		d.Remote = Exponential
	}
	return d
}

// CentralParams are the derived model parameters of the central
// cluster, exposed for reporting and tests.
type CentralParams struct {
	Q, P1, P2               float64 // routing probabilities
	TCPU, TDisk, TComm, TRD float64 // mean device service times per visit
}

// DeriveCentral computes the §5.4 calibration for an application.
func DeriveCentral(app workload.App) (CentralParams, error) {
	if err := app.Validate(); err != nil {
		return CentralParams{}, err
	}
	q := app.Q()
	p2 := app.RemoteFrac
	p1 := 1 - p2
	visits := (1 - q) / q // mean I/O requests per task
	return CentralParams{
		Q:     q,
		P1:    p1,
		P2:    p2,
		TCPU:  q * app.C * app.X,
		TDisk: (1 - app.C) * app.X / (p1 * visits),
		TComm: app.B * app.Y / (p2 * visits),
		TRD:   app.Y / (p2 * visits),
	}, nil
}

// Options tweak the cluster topology.
type Options struct {
	// RemoteAsDelay models the shared storage as an infinite-server
	// (no-contention) station — the paper's Fig. 5 "light load" case,
	// where the service distribution provably has no effect on the
	// steady state.
	RemoteAsDelay bool
	// SchedOverhead adds a dispatch stage of this mean duration that
	// every task passes through before its first CPU burst — the
	// "scheduling overhead" parameter the paper lists as an easy
	// extension (§5). Zero means no stage.
	SchedOverhead float64
	// SchedShared makes the dispatch stage a single shared FCFS queue
	// (a central scheduler) instead of a per-task delay stage.
	SchedShared bool
}

// Central builds the paper's central-storage cluster of k
// workstations as a 4-station network.
func Central(k int, app workload.App, dists Dists, opts Options) (*network.Network, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: need at least one workstation, got %d", k)
	}
	p, err := DeriveCentral(app)
	if err != nil {
		return nil, err
	}
	dists = dists.orDefault()
	route := matrix.New(4, 4)
	route.Set(0, 1, p.P1*(1-p.Q)) // CPU → local disk
	route.Set(0, 2, p.P2*(1-p.Q)) // CPU → comm channel
	route.Set(1, 0, 1)            // disk → CPU
	route.Set(2, 3, 1)            // comm → central storage
	route.Set(3, 0, 1)            // storage → CPU
	remoteKind := statespace.Queue
	if opts.RemoteAsDelay {
		remoteKind = statespace.Delay
	}
	svcCPU, err := service("CPU", dists.CPU, p.TCPU)
	if err != nil {
		return nil, err
	}
	svcDisk, err := service("Disk", dists.Disk, p.TDisk)
	if err != nil {
		return nil, err
	}
	svcComm, err := service("Comm", dists.Comm, p.TComm)
	if err != nil {
		return nil, err
	}
	svcRemote, err := service("RDisk", dists.Remote, p.TRD)
	if err != nil {
		return nil, err
	}
	net := &network.Network{
		Stations: []network.Station{
			{Name: "CPU", Kind: statespace.Delay, Service: svcCPU},
			{Name: "Disk", Kind: statespace.Delay, Service: svcDisk},
			{Name: "Comm", Kind: statespace.Queue, Service: svcComm},
			{Name: "RDisk", Kind: remoteKind, Service: svcRemote},
		},
		Route: route,
		Exit:  []float64{p.Q, 0, 0, 0},
		Entry: []float64{1, 0, 0, 0},
	}
	if opts.SchedOverhead > 0 {
		if err := addSchedStage(net, opts); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// addSchedStage appends a dispatch station that every entering task
// visits before reaching the original entry station.
func addSchedStage(net *network.Network, opts Options) error {
	svc, err := phase.ExpoMean(opts.SchedOverhead)
	if err != nil {
		return fmt.Errorf("cluster: Sched service: %w", err)
	}
	m := len(net.Stations)
	kind := statespace.Delay
	if opts.SchedShared {
		kind = statespace.Queue
	}
	grown := matrix.New(m+1, m+1)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			grown.Set(i, j, net.Route.At(i, j))
		}
	}
	// Scheduler routes to the old entry stations.
	for j := 0; j < m; j++ {
		grown.Set(m, j, net.Entry[j])
	}
	net.Route = grown
	net.Stations = append(net.Stations, network.Station{
		Name:    "Sched",
		Kind:    kind,
		Service: svc,
	})
	net.Exit = append(net.Exit, 0)
	entry := make([]float64, m+1)
	entry[m] = 1
	net.Entry = entry
	return nil
}

// DistributedParams are the derived parameters of the distributed
// cluster.
type DistributedParams struct {
	Q     float64
	PDisk []float64 // routing probability to each disk (sums to 1)
	TCPU  float64
	TDisk float64 // per-visit mean at each disk (identical disks)
	TComm float64
}

// DeriveDistributed computes the §5.5 calibration with the shared
// data spread uniformly over the k disks: every I/O request goes to
// disk i with probability 1/k and then crosses the communication
// channel back.
func DeriveDistributed(k int, app workload.App) (DistributedParams, error) {
	if err := app.Validate(); err != nil {
		return DistributedParams{}, err
	}
	if k < 1 {
		return DistributedParams{}, fmt.Errorf("cluster: need at least one workstation, got %d", k)
	}
	q := app.Q()
	visits := (1 - q) / q
	diskTotal := (1-app.C)*app.X + app.Y // all disk work, local plus remote
	pd := make([]float64, k)
	for i := range pd {
		pd[i] = 1 / float64(k)
	}
	return DistributedParams{
		Q:     q,
		PDisk: pd,
		TCPU:  q * app.C * app.X,
		TDisk: diskTotal / visits, // per visit: total disk time × k/(k·visits)
		TComm: app.B * app.Y / visits,
	}, nil
}

// Distributed builds the paper's distributed-storage cluster of k
// workstations as a (k+2)-station network: one CPU delay pool, k
// shared disk queues and one communication channel queue. Routing
// follows §5.5: CPU → disk i with pᵢ(1−q), every disk reply crosses
// the comm channel, comm → CPU.
func Distributed(k int, app workload.App, dists Dists) (*network.Network, error) {
	p, err := DeriveDistributed(k, app)
	if err != nil {
		return nil, err
	}
	dists = dists.orDefault()
	m := k + 2 // CPU, k disks, comm
	route := matrix.New(m, m)
	comm := m - 1
	for i := 0; i < k; i++ {
		route.Set(0, 1+i, p.PDisk[i]*(1-p.Q)) // CPU → disk i
		route.Set(1+i, comm, 1)               // disk → comm
	}
	route.Set(comm, 0, 1) // comm → CPU
	stations := make([]network.Station, m)
	svcCPU, err := service("CPU", dists.CPU, p.TCPU)
	if err != nil {
		return nil, err
	}
	svcComm, err := service("Comm", dists.Comm, p.TComm)
	if err != nil {
		return nil, err
	}
	stations[0] = network.Station{Name: "CPU", Kind: statespace.Delay, Service: svcCPU}
	for i := 0; i < k; i++ {
		svcDisk, err := service(fmt.Sprintf("D%d", i+1), dists.Remote, p.TDisk)
		if err != nil {
			return nil, err
		}
		stations[1+i] = network.Station{
			Name:    fmt.Sprintf("D%d", i+1),
			Kind:    statespace.Queue,
			Service: svcDisk,
		}
	}
	stations[comm] = network.Station{Name: "Comm", Kind: statespace.Queue, Service: svcComm}
	exit := make([]float64, m)
	exit[0] = p.Q
	entry := make([]float64, m)
	entry[0] = 1
	net := &network.Network{Stations: stations, Route: route, Exit: exit, Entry: entry}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
