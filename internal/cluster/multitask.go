package cluster

import (
	"fmt"

	"finwl/internal/network"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// CentralMultitask models the paper's multitasking extension (§5
// "more parameters can always be added … multitasking"): w
// workstations each multiprogrammed with `degree` tasks. Concurrency
// rises to K = w·degree, but the CPU and local-disk pools now have
// only w servers each, so tasks on the same workstation time-share —
// both stations become w-server multi-server stations. CPU and disk
// service must stay exponential (multi-server stations track no
// phases); the shared comm/storage servers may use any distribution.
//
// It returns the network and the concurrency K to build the solver
// with.
func CentralMultitask(w, degree int, app workload.App, dists Dists, opts Options) (*network.Network, int, error) {
	if w < 1 || degree < 1 {
		return nil, 0, fmt.Errorf("cluster: need w >= 1 and degree >= 1, got %d, %d", w, degree)
	}
	net, err := Central(w, app, dists, opts)
	if err != nil {
		return nil, 0, err
	}
	if degree == 1 {
		return net, w, nil // plain dedicated-workstation model
	}
	for _, idx := range []int{0, 1} { // CPU pool, local-disk pool
		if net.Stations[idx].Service.Dim() != 1 {
			return nil, 0, fmt.Errorf("cluster: multitasking requires exponential %s service", net.Stations[idx].Name)
		}
		net.Stations[idx].Kind = statespace.Multi
		net.Stations[idx].Servers = w
	}
	if err := net.Validate(); err != nil {
		return nil, 0, err
	}
	return net, w * degree, nil
}
