package experiments

import (
	"fmt"

	"finwl/internal/bounds"
	"finwl/internal/cluster"
	"finwl/internal/phase"
	"finwl/internal/productform"
	"finwl/internal/workload"
)

// SchedOverheadTable quantifies the paper's "scheduling overhead"
// extension: the dispatch cost every task pays before its first CPU
// burst, modeled either as per-node work (delay) or as a single
// central scheduler (shared queue). A central scheduler turns pure
// overhead into a new contention point: the two curves separate as
// the overhead grows.
func SchedOverheadTable(id string, k, n int, overheads []float64) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Scheduling-overhead ablation, central K=%d N=%d", k, n),
		XLabel: "overhead",
		YLabel: "E(T)",
		X:      overheads,
	}
	app := workload.Default(n)
	for _, shared := range []bool{false, true} {
		label := "per-node"
		if shared {
			label = "central sched"
		}
		var ys []float64
		for _, ov := range overheads {
			s, err := newSolver(CentralArch, k, app, cluster.Dists{},
				cluster.Options{SchedOverhead: ov, SchedShared: shared})
			if err != nil {
				return nil, err
			}
			total, err := s.TotalTime(n)
			if err != nil {
				return nil, err
			}
			ys = append(ys, total)
		}
		t.Series = append(t.Series, Series{Label: label, Y: ys})
	}
	return t, nil
}

// SchedOverhead is the registered variant.
func SchedOverhead() (*Table, error) {
	return SchedOverheadTable("tbl-sched", 4, 30, []float64{0.001, 0.1, 0.3, 0.6, 1.0})
}

// AvailabilityTable folds server breakdowns into the shared storage
// service law (phase.WithBreakdowns) and compares the exact model
// against the naive prediction that only inflates the mean service
// time by 1/availability. Both have the same utilization; the exact
// model also carries the repair-time bursts, so it is always slower —
// the gap is what ignoring failure dynamics costs.
func AvailabilityTable(id string, k, n int, failRates []float64, repair float64) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Storage-server breakdowns, central K=%d N=%d (repair rate %.3g)", k, n, repair),
		XLabel: "fail rate",
		YLabel: "E(T)",
		X:      failRates,
		Notes:  []string{"naive = mean inflated by 1/availability; exact = PH breakdown model"},
	}
	app := workload.Default(n)
	var exact, naive, avail []float64
	for _, f := range failRates {
		inflate := 1 + f/repair
		brk := func(mean float64) (*phase.PH, error) {
			d, err := phase.ExpoMean(mean)
			if err != nil {
				return nil, err
			}
			return phase.WithBreakdowns(d, f, repair)
		}
		sExact, err := newSolver(CentralArch, k, app, cluster.Dists{Remote: brk}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		e, err := sExact.TotalTime(n)
		if err != nil {
			return nil, err
		}
		slow := func(mean float64) (*phase.PH, error) { return phase.ExpoMean(mean * inflate) }
		sNaive, err := newSolver(CentralArch, k, app, cluster.Dists{Remote: slow}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		nv, err := sNaive.TotalTime(n)
		if err != nil {
			return nil, err
		}
		exact = append(exact, e)
		naive = append(naive, nv)
		avail = append(avail, 100/inflate)
	}
	t.Series = []Series{
		{Label: "exact E(T)", Y: exact},
		{Label: "naive E(T)", Y: naive},
		{Label: "avail %", Y: avail},
	}
	return t, nil
}

// Availability is the registered variant.
func Availability() (*Table, error) {
	return AvailabilityTable("tbl-avail", 4, 30, []float64{0, 0.05, 0.1, 0.2, 0.4}, 0.5)
}

// BoundsTable stacks the modeling tiers for the central cluster:
// O(1) operational bounds, the exact product-form throughput, and the
// transient model's effective throughput N/E(T) — which sits *below*
// the steady-state value because it pays for the fill and drain
// regions the cheaper tiers cannot see.
func BoundsTable(id string, ks []int, n int) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Modeling tiers: bounds vs product form vs transient, N=%d", n),
		XLabel: "K",
		YLabel: "throughput",
	}
	app := workload.Default(n)
	var lo, loBJB, pf, hiBJB, hi, eff []float64
	for _, k := range ks {
		t.X = append(t.X, float64(k))
		net, err := buildNet(CentralArch, k, app, cluster.Dists{}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		m, err := productform.FromNetwork(net)
		if err != nil {
			return nil, err
		}
		b, err := bounds.FromModel(m, k)
		if err != nil {
			return nil, err
		}
		s, err := newSolver(CentralArch, k, app, cluster.Dists{}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		total, err := s.TotalTime(n)
		if err != nil {
			return nil, err
		}
		lo = append(lo, b.XLower)
		loBJB = append(loBJB, b.XLowerBJB)
		pf = append(pf, m.ThroughputBuzen(k))
		hiBJB = append(hiBJB, b.XUpperBJB)
		hi = append(hi, b.XUpper)
		eff = append(eff, float64(n)/total)
	}
	t.Series = []Series{
		{Label: "X lower", Y: lo},
		{Label: "X lower BJB", Y: loBJB},
		{Label: "X exact PF", Y: pf},
		{Label: "X upper BJB", Y: hiBJB},
		{Label: "X upper", Y: hi},
		{Label: "N/E(T) transient", Y: eff},
	}
	return t, nil
}

// Bounds is the registered variant.
func Bounds() (*Table, error) {
	return BoundsTable("tbl-bounds", []int{1, 2, 3, 4, 5, 6, 7, 8}, 30)
}
