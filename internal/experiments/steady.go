package experiments

import (
	"fmt"
	"math"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/productform"
	"finwl/internal/workload"
)

// SteadyStateSweep computes the steady-state inter-departure time
// t_ss = π*·τ'_K as the shared server's C² varies, under contention
// (FCFS queue) and without (infinite-server) — the paper's Figure 5.
func SteadyStateSweep(id string, arch Arch, k int, app workload.App, cv2s []float64) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Steady-state inter-departure time vs C², %s K=%d", arch, k),
		XLabel: "C2",
		YLabel: "t_ss",
		X:      cv2s,
		Notes: []string{
			"contention: shared storage as FCFS queue; no contention: infinite-server",
		},
	}
	for _, contention := range []bool{true, false} {
		label := "Contention"
		opts := cluster.Options{}
		if !contention {
			label = "No contention"
			opts.RemoteAsDelay = true
		}
		var ys []float64
		for _, cv2 := range cv2s {
			s, err := newSolver(arch, k, app, distsFor(CompRemote, cluster.WithCV2(cv2)), opts)
			if err != nil {
				return nil, fmt.Errorf("%s (C²=%v): %w", id, cv2, err)
			}
			_, tss, err := s.SteadyState()
			if err != nil {
				return nil, fmt.Errorf("%s (C²=%v): %w", id, cv2, err)
			}
			ys = append(ys, tss)
		}
		t.Series = append(t.Series, Series{Label: label, Y: ys})
	}
	return t, nil
}

// Fig5 reproduces Figure 5: steady-state inter-departure time of an
// 8-workstation central cluster as the shared server's C² grows from
// 1 to 100, with and without contention. The contention curve dips to
// a minimum before rising; the no-contention curve is flat
// (insensitivity).
func Fig5() (*Table, error) {
	return SteadyStateSweep("fig5", CentralArch, 8, workload.Default(30),
		[]float64{1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
}

// SteadyStateVsPFTable verifies the paper's claim that for
// exponential servers the transient model's steady state equals the
// product-form (Jackson) solution, and quantifies the divergence once
// a shared server is H2.
func SteadyStateVsPFTable(id string, arch Arch, ks []int, app workload.App) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  "Transient-model steady state vs product-form solution",
		XLabel: "K",
		YLabel: "inter-departure time",
		Notes: []string{
			"exp: identical by theory; H2 C2=10 on the shared server: PF no longer applies",
		},
	}
	var tssExp, pfExp, tssH2, pfRel []float64
	for _, k := range ks {
		t.X = append(t.X, float64(k))
		net, err := buildNet(arch, k, app, cluster.Dists{}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			return nil, err
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			return nil, err
		}
		pfModel, err := productform.FromNetwork(net)
		if err != nil {
			return nil, err
		}
		pf := pfModel.Interdeparture(k)
		tssExp = append(tssExp, tss)
		pfExp = append(pfExp, pf)

		netH2, err := buildNet(arch, k, app, distsFor(CompRemote, cluster.WithCV2(10)), cluster.Options{})
		if err != nil {
			return nil, err
		}
		sH2, err := core.NewSolver(netH2, k)
		if err != nil {
			return nil, err
		}
		_, tH2, err := sH2.SteadyState()
		if err != nil {
			return nil, err
		}
		tssH2 = append(tssH2, tH2)
		pfRel = append(pfRel, 100*math.Abs(tH2-pf)/tH2)
	}
	t.Series = []Series{
		{Label: "t_ss exp", Y: tssExp},
		{Label: "PF exp", Y: pfExp},
		{Label: "t_ss H2", Y: tssH2},
		{Label: "PF err% vs H2", Y: pfRel},
	}
	return t, nil
}

// SteadyStateVsPF runs the identity check on the central cluster for
// K = 1..8.
func SteadyStateVsPF() (*Table, error) {
	return SteadyStateVsPFTable("tbl-ss", CentralArch, []int{1, 2, 3, 4, 5, 6, 7, 8}, workload.Default(30))
}
