package experiments

import (
	"math"
	"strings"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// Reduced configurations keep the test suite fast; the full paper
// parameters run in the benchmarks.

func TestInterdepartureRegions(t *testing.T) {
	tab, err := InterdepartureTable("t", "test", CentralArch, 3, workload.Default(12),
		[]Variant{
			{Label: "Exp"},
			{Label: "H2", Dists: distsFor(CompRemote, cluster.WithCV2(20))},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 2 || len(tab.Series[0].Y) != 12 {
		t.Fatalf("unexpected table shape: %d series, %d epochs", len(tab.Series), len(tab.Series[0].Y))
	}
	exp, h2 := tab.Series[0].Y, tab.Series[1].Y
	// Steady feeding region: middle epochs nearly constant.
	if math.Abs(exp[6]-exp[7])/exp[6] > 0.01 {
		t.Fatalf("no steady plateau: %v vs %v", exp[6], exp[7])
	}
	// Draining region: final epoch largest.
	if exp[11] <= exp[6] {
		t.Fatal("draining epochs should exceed the plateau")
	}
	// The H2 plateau sits above the exponential plateau (contention
	// penalty of variability).
	if h2[6] <= exp[6] {
		t.Fatalf("H2 plateau %v not above exp %v", h2[6], exp[6])
	}
}

func TestSteadyStateSweepShapes(t *testing.T) {
	tab, err := SteadyStateSweep("t", CentralArch, 3, workload.Default(10), []float64{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	var contention, noContention []float64
	for _, s := range tab.Series {
		if s.Label == "Contention" {
			contention = s.Y
		} else {
			noContention = s.Y
		}
	}
	// No-contention curve is flat (insensitivity).
	for i := 1; i < len(noContention); i++ {
		if math.Abs(noContention[i]-noContention[0])/noContention[0] > 1e-6 {
			t.Fatalf("no-contention curve not flat: %v", noContention)
		}
	}
	// Contention curve grows with C² and dominates the no-contention
	// curve.
	for i := 1; i < len(contention); i++ {
		if contention[i] <= contention[i-1] {
			t.Fatalf("contention curve not increasing: %v", contention)
		}
	}
	if contention[0] <= noContention[0] {
		t.Fatal("queueing should cost time vs infinite servers")
	}
}

func TestPredictionErrorShapes(t *testing.T) {
	tab, err := PredictionErrorTable("t", CentralArch, 3, []int{10, 40}, CompRemote,
		[]float64{1, 10, 50}, workload.Default)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		if s.Y[0] != 0 {
			t.Fatalf("%s: error at C²=1 is %v, want 0", s.Label, s.Y[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s: error not increasing: %v", s.Label, s.Y)
			}
		}
	}
}

func TestPredictionErrorDedicatedErlang(t *testing.T) {
	// C² < 1 (Erlang CPU) must also give a non-zero but small error,
	// the paper's "exponential is a good approximation below C²=1".
	tab, err := PredictionErrorTable("t", CentralArch, 3, []int{12}, CompCPU,
		[]float64{1.0 / 3, 1, 10}, workload.Default)
	if err != nil {
		t.Fatal(err)
	}
	y := tab.Series[0].Y
	if y[1] != 0 {
		t.Fatal("C²=1 must be exact")
	}
	if y[0] <= 0 || y[0] >= y[2] {
		t.Fatalf("Erlang error %v should be positive but below the H2 error %v", y[0], y[2])
	}
}

func TestSpeedupVsCV2Shapes(t *testing.T) {
	tab, err := SpeedupVsCV2Table("t", CentralArch, 3, []int{10, 40}, CompRemote,
		[]float64{1, 10, 50}, workload.Default)
	if err != nil {
		t.Fatal(err)
	}
	small, large := tab.Series[0].Y, tab.Series[1].Y
	for i := range small {
		// Larger workloads amortize the transient: higher speedup.
		if large[i] <= small[i] {
			t.Fatalf("N=40 speedup %v not above N=10 %v at C²=%v", large[i], small[i], tab.X[i])
		}
	}
	for i := 1; i < len(small); i++ {
		if small[i] >= small[i-1] {
			t.Fatalf("speedup should fall with C²: %v", small)
		}
	}
}

func TestSpeedupVsKShapes(t *testing.T) {
	tab, err := SpeedupVsKTable("t", "test", CentralArch, []int{1, 2, 4}, []int{8, 40},
		[]Variant{{Label: ""}}, workload.LowContention)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tab.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s: speedup not increasing in K: %v", s.Label, s.Y)
			}
		}
	}
	// Transient penalty: the small workload scales worse at K=4.
	if tab.Series[1].Y[2] <= tab.Series[0].Y[2] {
		t.Fatal("larger workload should achieve higher speedup at K=4")
	}
}

func TestApproxVsExactShapes(t *testing.T) {
	tab, err := ApproxVsExactTable("t", CentralArch, 3, []int{5, 20, 100},
		cluster.Dists{}, workload.Default)
	if err != nil {
		t.Fatal(err)
	}
	errs := tab.Series[2].Y
	if errs[len(errs)-1] > 1 {
		t.Fatalf("approximation error at N=100 is %v%%, want < 1%%", errs[len(errs)-1])
	}
	if errs[len(errs)-1] >= errs[0] && errs[0] > 0 {
		t.Fatalf("approximation should improve with N: %v", errs)
	}
}

func TestSimValidationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	tab, err := SimValidationTable("t", 400)
	if err != nil {
		t.Fatal(err)
	}
	analytic, simulated, ci := tab.Series[0].Y, tab.Series[1].Y, tab.Series[2].Y
	for i := range analytic {
		if math.Abs(analytic[i]-simulated[i]) > 5*ci[i] {
			t.Errorf("scenario %d: analytic %v vs sim %v ± %v", i+1, analytic[i], simulated[i], ci[i])
		}
	}
}

func TestStateSpaceTable(t *testing.T) {
	tab, err := StateSpaceTable()
	if err != nil {
		t.Fatal(err)
	}
	// K=5: Kronecker 11^5 = 161051, reduced C(8,5) = 56.
	if tab.Series[0].Y[4] != 161051 {
		t.Fatalf("Kronecker K=5 = %v", tab.Series[0].Y[4])
	}
	if tab.Series[1].Y[4] != 56 {
		t.Fatalf("reduced K=5 = %v", tab.Series[1].Y[4])
	}
}

func TestSteadyStateVsPFIdentity(t *testing.T) {
	tab, err := SteadyStateVsPFTable("t", CentralArch, []int{1, 3}, workload.Default(10))
	if err != nil {
		t.Fatal(err)
	}
	tss, pf := tab.Series[0].Y, tab.Series[1].Y
	for i := range tss {
		if math.Abs(tss[i]-pf[i]) > 1e-8*pf[i] {
			t.Fatalf("K=%v: t_ss %v != PF %v", tab.X[i], tss[i], pf[i])
		}
	}
}

func TestRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo", XLabel: "k", YLabel: "v",
		X:      []float64{1, 2},
		Series: []Series{{Label: "a", Y: []float64{3, 4}}, {Label: "b", Y: []float64{5}}},
		Notes:  []string{"note"},
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "note", "a", "b", "3", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Fatalf("missing runner for %s", id)
		}
	}
}
