// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6). Each figure is a parameterless
// function returning a Table; parameterized helpers underneath let
// tests and callers run reduced versions. The cmd/finwl binary and
// the repository-level benchmarks are thin wrappers over this
// package, and EXPERIMENTS.md records the outputs next to the
// paper's curves.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/workload"
)

// Series is one labeled curve sharing the Table's X grid.
type Series struct {
	Label string
	Y     []float64
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// Render writes the table as aligned text columns.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	header := fmt.Sprintf("%14s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf(" %14s", s.Label)
	}
	if _, err := fmt.Fprintf(w, "%s   [%s]\n", header, t.YLabel); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header)+3)); err != nil {
		return err
	}
	for i, x := range t.X {
		row := fmt.Sprintf("%14.6g", x)
		for _, s := range t.Series {
			if i < len(s.Y) {
				row += fmt.Sprintf(" %14.6g", s.Y[i])
			} else {
				row += fmt.Sprintf(" %14s", "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Arch selects the cluster architecture.
type Arch int

const (
	// CentralArch is the §5.4 central-storage cluster.
	CentralArch Arch = iota
	// DistributedArch is the §5.5 distributed-storage cluster.
	DistributedArch
)

func (a Arch) String() string {
	if a == CentralArch {
		return "central"
	}
	return "distributed"
}

// Component identifies which cluster device a variant's distribution
// applies to.
type Component int

const (
	// CompCPU varies the dedicated CPU servers (§6.2).
	CompCPU Component = iota
	// CompRemote varies the shared storage servers (§6.1).
	CompRemote
)

func (c Component) String() string {
	if c == CompCPU {
		return "CPU"
	}
	return "remote disk"
}

// distsFor builds a Dists with dist applied to the chosen component.
func distsFor(c Component, d cluster.Dist) cluster.Dists {
	switch c {
	case CompCPU:
		return cluster.Dists{CPU: d}
	default:
		return cluster.Dists{Remote: d}
	}
}

// buildNet constructs the chosen architecture.
func buildNet(arch Arch, k int, app workload.App, d cluster.Dists, opts cluster.Options) (*network.Network, error) {
	if arch == CentralArch {
		return cluster.Central(k, app, d, opts)
	}
	return cluster.Distributed(k, app, d)
}

// newSolver builds a transient solver for the architecture.
func newSolver(arch Arch, k int, app workload.App, d cluster.Dists, opts cluster.Options) (*core.Solver, error) {
	net, err := buildNet(arch, k, app, d, opts)
	if err != nil {
		return nil, err
	}
	return core.NewSolver(net, k)
}

// Runner produces one table.
type Runner func() (*Table, error)

// Registry maps experiment ids to runners; Order lists them in paper
// order.
var Registry = map[string]Runner{
	"fig3":       Fig3,
	"fig4":       Fig4,
	"fig5":       Fig5,
	"fig6":       Fig6,
	"fig7":       Fig7,
	"fig8":       Fig8,
	"fig9":       Fig9,
	"fig10":      Fig10,
	"fig11":      Fig11,
	"fig12":      Fig12,
	"fig13":      Fig13,
	"fig14":      Fig14,
	"fig15":      Fig15,
	"tbl-ss":     SteadyStateVsPF,
	"tbl-approx": ApproxVsExact,
	"tbl-sim":    SimValidation,
	"tbl-space":  StateSpaceTable,
	"tbl-dist":   CompletionPercentiles,
	"tbl-multi":  Multitask,
	"tbl-sched":  SchedOverhead,
	"tbl-avail":  Availability,
	"tbl-bounds": Bounds,
	"tbl-mix":    ClassMix,
}

// Order is the canonical run order.
var Order = []string{
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"tbl-ss", "tbl-approx", "tbl-sim", "tbl-space", "tbl-dist", "tbl-multi",
	"tbl-sched", "tbl-avail", "tbl-bounds", "tbl-mix",
}
