package experiments

import (
	"fmt"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/ctmc"
	"finwl/internal/network"
	"finwl/internal/workload"
)

// CompletionPercentilesTable goes beyond the paper: the full
// distribution of the job completion time by uniformization of the
// absorbing workload chain, for exponential vs hyperexponential
// shared service. Heavy tails move the p99 makespan far more than the
// mean — the number a deadline-driven operator actually cares about.
func CompletionPercentilesTable(id string, arch Arch, k, n int, cv2s []float64) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Completion-time distribution of the workload, %s K=%d N=%d", arch, k, n),
		XLabel: "C2",
		YLabel: "time",
		X:      cv2s,
		Notes:  []string{"mean from the absorbing chain; percentiles by uniformization"},
	}
	app := workload.Default(n)
	var means, p50s, p90s, p99s []float64
	for _, cv2 := range cv2s {
		d := cluster.Dists{}
		if cv2 != 1 {
			d = distsFor(CompRemote, cluster.WithCV2(cv2))
		}
		net, err := buildNet(arch, k, app, d, cluster.Options{})
		if err != nil {
			return nil, err
		}
		chain, err := network.NewChain(net, k)
		if err != nil {
			return nil, err
		}
		c, err := ctmc.Build(chain, n)
		if err != nil {
			return nil, err
		}
		mean, err := c.MeanAbsorptionTime()
		if err != nil {
			return nil, err
		}
		q50, err := c.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		q90, err := c.Quantile(0.9)
		if err != nil {
			return nil, err
		}
		q99, err := c.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		means = append(means, mean)
		p50s = append(p50s, q50)
		p90s = append(p90s, q90)
		p99s = append(p99s, q99)
	}
	t.Series = []Series{
		{Label: "mean", Y: means},
		{Label: "p50", Y: p50s},
		{Label: "p90", Y: p90s},
		{Label: "p99", Y: p99s},
	}
	return t, nil
}

// CompletionPercentiles is the registered variant.
func CompletionPercentiles() (*Table, error) {
	return CompletionPercentilesTable("tbl-dist", CentralArch, 3, 12, []float64{1, 10, 25, 50})
}

// MultitaskTable is the multitasking ablation: w workstations running
// 1, 2 or 3 tasks each. Multiprogramming overlaps one task's I/O with
// another's compute on the same CPU, shrinking the per-node idle time
// — until the shared storage saturates.
func MultitaskTable(id string, w int, degrees []int, n int) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Multitasking ablation: %d workstations, varying tasks per node", w),
		XLabel: "tasks/node",
		YLabel: "value",
	}
	app := workload.Default(n)
	var totals, speedups []float64
	for _, deg := range degrees {
		t.X = append(t.X, float64(deg))
		net, k, err := cluster.CentralMultitask(w, deg, app, cluster.Dists{}, cluster.Options{})
		if err != nil {
			return nil, err
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			return nil, err
		}
		total, err := s.TotalTime(n)
		if err != nil {
			return nil, err
		}
		totals = append(totals, total)
		speedups = append(speedups, app.SerialTime()/total)
	}
	t.Series = []Series{
		{Label: "E(T)", Y: totals},
		{Label: "speedup", Y: speedups},
	}
	return t, nil
}

// Multitask is the registered variant.
func Multitask() (*Table, error) {
	return MultitaskTable("tbl-multi", 4, []int{1, 2, 3}, 40)
}
