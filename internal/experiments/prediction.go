package experiments

import (
	"fmt"
	"math"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// PredictionErrorTable computes the percentage error of assuming
// exponential service when the true distribution of one component has
// squared coefficient of variation C²:
//
//	E% = |E(T_act) − E(T_exp)| / E(T_act) × 100   (§6.1.3)
//
// One series per workload size in ns; x-axis is C².
func PredictionErrorTable(id string, arch Arch, k int, ns []int, comp Component, cv2s []float64, mkApp func(int) workload.App) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Prediction error of the exponential assumption, %s K=%d, %s varied", arch, k, comp),
		XLabel: "C2",
		YLabel: "error %",
		X:      cv2s,
	}
	// The network is independent of N, so the exponential baseline and
	// each C² variant build one solver and sweep every workload size in
	// a single feeding pass.
	sExp, err := newSolver(arch, k, mkApp(ns[0]), cluster.Dists{}, cluster.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: baseline: %w", id, err)
	}
	expTotals, err := sExp.TotalTimeSweep(ns)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(cv2s)) // actual totals per C², parallel to ns
	for j, cv2 := range cv2s {
		if cv2 == 1 {
			cols[j] = expTotals
			continue
		}
		s, err := newSolver(arch, k, mkApp(ns[0]), distsFor(comp, cluster.WithCV2(cv2)), cluster.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s (C²=%v): %w", id, cv2, err)
		}
		cols[j], err = s.TotalTimeSweep(ns)
		if err != nil {
			return nil, err
		}
	}
	for i, n := range ns {
		ys := make([]float64, len(cv2s))
		for j := range cv2s {
			ys[j] = 100 * math.Abs(cols[j][i]-expTotals[i]) / cols[j][i]
		}
		t.Series = append(t.Series, Series{Label: fmt.Sprintf("N = %d", n), Y: ys})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: prediction error on a 5-workstation
// distributed cluster whose shared disks are hyperexponential, for
// N = 30 and N = 100.
func Fig6() (*Table, error) {
	return PredictionErrorTable("fig6", DistributedArch, 5, []int{30, 100},
		CompRemote, []float64{1, 5, 10, 20, 40, 60, 80, 90}, workload.Default)
}

// Fig7 reproduces Figure 7: the same sweep on an 8-workstation
// central cluster.
func Fig7() (*Table, error) {
	return PredictionErrorTable("fig7", CentralArch, 8, []int{30, 100},
		CompRemote, []float64{1, 5, 10, 20, 40, 60, 80, 90}, workload.Default)
}

// Fig12 reproduces Figure 12: prediction error with the dedicated
// CPUs non-exponential (Erlang below C²=1, H2 above), central K=5.
func Fig12() (*Table, error) {
	return PredictionErrorTable("fig12", CentralArch, 5, []int{30},
		CompCPU, []float64{1.0 / 3, 0.5, 1, 5, 10}, workload.Default)
}

// Fig13 reproduces Figure 13: the same on 8 workstations.
func Fig13() (*Table, error) {
	return PredictionErrorTable("fig13", CentralArch, 8, []int{30},
		CompCPU, []float64{1.0 / 3, 0.5, 1, 5, 10}, workload.Default)
}
