package experiments

import (
	"fmt"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// speedup is the paper's §6.1.4 metric: the job's serial time on one
// workstation with purely local data over its modeled time on the
// cluster.
func speedup(app workload.App, total float64) float64 {
	return app.SerialTime() / total
}

// SpeedupVsCV2Table sweeps a component's C² and reports speedup — the
// paper's Figures 8 and 9 (shared server varied, one series per N).
// The network depends on the workload only through its per-task
// parameters, so each C² point builds one solver and evaluates every
// N in a single SolveSweep feeding pass.
func SpeedupVsCV2Table(id string, arch Arch, k int, ns []int, comp Component, cv2s []float64, mkApp func(int) workload.App) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Speedup vs C², %s K=%d, %s varied", arch, k, comp),
		XLabel: "C2",
		YLabel: "speedup",
		X:      cv2s,
	}
	cols := make([][]float64, len(cv2s)) // totals per C² point, parallel to ns
	for j, cv2 := range cv2s {
		s, err := newSolver(arch, k, mkApp(ns[0]), distsFor(comp, cluster.WithCV2(cv2)), cluster.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s (C²=%v): %w", id, cv2, err)
		}
		cols[j], err = s.TotalTimeSweep(ns)
		if err != nil {
			return nil, err
		}
	}
	for i, n := range ns {
		app := mkApp(n)
		ys := make([]float64, len(cv2s))
		for j := range cv2s {
			ys[j] = speedup(app, cols[j][i])
		}
		t.Series = append(t.Series, Series{Label: fmt.Sprintf("N = %d", n), Y: ys})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: speedup of a 5-workstation central
// cluster as the shared server's C² grows, for N = 30 and 100.
func Fig8() (*Table, error) {
	return SpeedupVsCV2Table("fig8", CentralArch, 5, []int{30, 100},
		CompRemote, []float64{1, 5, 10, 20, 40, 60, 80, 90}, workload.Default)
}

// Fig9 reproduces Figure 9: the same on 8 workstations.
func Fig9() (*Table, error) {
	return SpeedupVsCV2Table("fig9", CentralArch, 8, []int{30, 100},
		CompRemote, []float64{1, 5, 10, 20, 40, 60, 80, 90}, workload.Default)
}

// SpeedupVsKTable sweeps the cluster size — the paper's Figures 14
// and 15. Each variant contributes one series per workload size.
func SpeedupVsKTable(id, title string, arch Arch, ks []int, ns []int, variants []Variant, mkApp func(int) workload.App) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "K",
		YLabel: "speedup",
	}
	for _, k := range ks {
		t.X = append(t.X, float64(k))
	}
	for _, v := range variants {
		// One solver per cluster size serves every workload in ns.
		cols := make([][]float64, len(ks))
		for j, k := range ks {
			s, err := newSolver(arch, k, mkApp(ns[0]), v.Dists, v.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s (K=%d): %w", id, k, err)
			}
			cols[j], err = s.TotalTimeSweep(ns)
			if err != nil {
				return nil, err
			}
		}
		for i, n := range ns {
			app := mkApp(n)
			label := v.Label
			if len(ns) > 1 {
				label = fmt.Sprintf("%s N=%d", v.Label, n)
				if v.Label == "" {
					label = fmt.Sprintf("N = %d", n)
				}
			}
			ys := make([]float64, len(ks))
			for j := range ks {
				ys[j] = speedup(app, cols[j][i])
			}
			t.Series = append(t.Series, Series{Label: label, Y: ys})
		}
	}
	return t, nil
}

// Fig14 reproduces Figure 14: exponential speedup vs cluster size for
// N = 20, 100 and 200 — the transient region throttles the small
// workload long before contention does.
func Fig14() (*Table, error) {
	return SpeedupVsKTable("fig14",
		"Speedup vs K (exponential), low-contention workload",
		CentralArch, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []int{20, 100, 200},
		[]Variant{{Label: ""}}, workload.LowContention)
}

// Fig15 reproduces Figure 15: speedup vs cluster size at N = 100 for
// exponential, Erlang-2 and H2 (C²=2) CPUs.
func Fig15() (*Table, error) {
	return SpeedupVsKTable("fig15",
		"Speedup vs K by service distribution, N = 100",
		CentralArch, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []int{100},
		[]Variant{
			{Label: "Exp"},
			{Label: "E2", Dists: distsFor(CompCPU, cluster.ErlangStages(2))},
			{Label: "H2 C2=2", Dists: distsFor(CompCPU, cluster.WithCV2(2))},
		}, workload.LowContention)
}
