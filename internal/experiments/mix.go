package experiments

import (
	"fmt"

	"finwl/internal/matrix"
	"finwl/internal/multiclass"
	"finwl/internal/statespace"
)

// mixConfig builds the two-class heterogeneous cluster used by the
// class-mix ablation: a CPU pool, a shared communication channel and
// a shared disk, where class 1 ("batch") is `slowdown`× slower at
// every device than class 0 ("interactive").
func mixConfig(slowdown float64) *multiclass.Config {
	const q = 0.2
	baseRates := []float64{2, 4, 1.2} // CPU, Comm, Disk for class 0
	routes := make([]*matrix.Matrix, 2)
	exits := make([][]float64, 2)
	entries := make([][]float64, 2)
	for c := 0; c < 2; c++ {
		r := matrix.New(3, 3)
		r.Set(0, 1, (1-q)/2)
		r.Set(0, 2, (1-q)/2)
		r.Set(1, 0, 1)
		r.Set(2, 0, 1)
		routes[c] = r
		exits[c] = []float64{q, 0, 0}
		entries[c] = []float64{1, 0, 0}
	}
	rates := make([][]float64, 3)
	for st, base := range baseRates {
		rates[st] = []float64{base, base / slowdown}
	}
	return &multiclass.Config{
		Stations: []multiclass.Station{
			{Name: "CPU", Kind: statespace.Delay},
			{Name: "Comm", Kind: statespace.Queue},
			{Name: "Disk", Kind: statespace.Queue},
		},
		Classes: 2,
		Rates:   rates,
		Route:   routes,
		Exit:    exits,
		Entry:   entries,
	}
}

// ClassMixTable sweeps the composition of a two-class workload
// (interactive + batch tasks, batch `slowdown`× heavier) and compares
// admission policies: random (proportional) admission versus
// batch-first priority. Starting the long tasks early trims the
// draining tail — the multiclass version of LPT scheduling.
func ClassMixTable(id string, n, k int, slowdown float64, batchCounts []int) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Two-class workload mix, N=%d K=%d, batch tasks %gx heavier", n, k, slowdown),
		XLabel: "batch tasks",
		YLabel: "E(T)",
		Notes:  []string{"batch-first admits all heavy tasks before any interactive ones"},
	}
	cfgBatchFirst := mixConfig(slowdown)
	solverBF, err := multiclass.NewSolver(swapClasses(cfgBatchFirst))
	if err != nil {
		return nil, err
	}
	solver, err := multiclass.NewSolver(cfgBatchFirst)
	if err != nil {
		return nil, err
	}
	var random, batchFirst []float64
	for _, b := range batchCounts {
		t.X = append(t.X, float64(b))
		w := multiclass.Workload{Counts: []int{n - b, b}, K: k, Policy: multiclass.Proportional}
		res, err := solver.Solve(w)
		if err != nil {
			return nil, err
		}
		random = append(random, res.TotalTime)
		// Batch-first: class order swapped so PriorityOrder admits the
		// heavy class first.
		wBF := multiclass.Workload{Counts: []int{b, n - b}, K: k, Policy: multiclass.PriorityOrder}
		resBF, err := solverBF.Solve(wBF)
		if err != nil {
			return nil, err
		}
		batchFirst = append(batchFirst, resBF.TotalTime)
	}
	t.Series = []Series{
		{Label: "random admit", Y: random},
		{Label: "batch-first", Y: batchFirst},
	}
	return t, nil
}

// swapClasses returns the config with class indices 0 and 1 swapped.
func swapClasses(cfg *multiclass.Config) *multiclass.Config {
	out := &multiclass.Config{
		Stations: cfg.Stations,
		Classes:  2,
		Rates:    make([][]float64, len(cfg.Rates)),
		Route:    []*matrix.Matrix{cfg.Route[1], cfg.Route[0]},
		Exit:     [][]float64{cfg.Exit[1], cfg.Exit[0]},
		Entry:    [][]float64{cfg.Entry[1], cfg.Entry[0]},
	}
	for st := range cfg.Rates {
		out.Rates[st] = []float64{cfg.Rates[st][1], cfg.Rates[st][0]}
	}
	return out
}

// ClassMix is the registered variant.
func ClassMix() (*Table, error) {
	return ClassMixTable("tbl-mix", 12, 3, 4, []int{0, 2, 4, 6, 8, 10, 12})
}
