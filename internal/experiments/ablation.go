package experiments

import (
	"fmt"
	"math"
	"math/big"

	"finwl/internal/cluster"
	"finwl/internal/sim"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// ApproxVsExactTable compares the exact transient E(T) with the
// steady-state approximation (the paper's reference [17] ablation):
// the approximation's error must vanish as N grows and be largest
// when the transient regions dominate.
func ApproxVsExactTable(id string, arch Arch, k int, ns []int, d cluster.Dists, mkApp func(int) workload.App) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Exact transient E(T) vs steady-state approximation, %s K=%d", arch, k),
		XLabel: "N",
		YLabel: "time / error %",
	}
	// One solver serves the whole N grid: the exact totals come from a
	// single SolveSweep feeding pass, the approximation reuses the
	// solver's steady state per point.
	s, err := newSolver(arch, k, mkApp(ns[0]), d, cluster.Options{})
	if err != nil {
		return nil, err
	}
	exacts, err := s.TotalTimeSweep(ns)
	if err != nil {
		return nil, err
	}
	var approxs, errs []float64
	for i, n := range ns {
		t.X = append(t.X, float64(n))
		appr, err := s.ApproxTotalTime(n)
		if err != nil {
			return nil, err
		}
		approxs = append(approxs, appr)
		errs = append(errs, 100*math.Abs(appr-exacts[i])/exacts[i])
	}
	t.Series = []Series{
		{Label: "exact E(T)", Y: exacts},
		{Label: "approx E(T)", Y: approxs},
		{Label: "error %", Y: errs},
	}
	return t, nil
}

// ApproxVsExact runs the ablation on the central cluster with an H2
// shared server, where the transient regions are the longest.
func ApproxVsExact() (*Table, error) {
	return ApproxVsExactTable("tbl-approx", CentralArch, 5,
		[]int{5, 10, 20, 50, 100, 200, 400},
		distsFor(CompRemote, cluster.WithCV2(10)), workload.Default)
}

// SimValidationTable runs the discrete-event simulator against the
// analytic transient model on the configurations of Figures 3 and 10
// and reports both values with the simulation CI — the paper's
// validation methodology.
func SimValidationTable(id string, reps int) (*Table, error) {
	type scenario struct {
		label string
		arch  Arch
		k, n  int
		dists cluster.Dists
	}
	scenarios := []scenario{
		{"central exp", CentralArch, 5, 30, cluster.Dists{}},
		{"central H2 rdisk", CentralArch, 5, 30, distsFor(CompRemote, cluster.WithCV2(10))},
		{"central E3 cpu", CentralArch, 5, 30, distsFor(CompCPU, cluster.ErlangStages(3))},
		{"distributed exp", DistributedArch, 3, 20, cluster.Dists{}},
	}
	t := &Table{
		ID:     id,
		Title:  "Analytic E(T) vs discrete-event simulation",
		XLabel: "scenario#",
		YLabel: "time",
		Notes:  []string{fmt.Sprintf("%d replications per scenario; CI is the 95%% half-width", reps)},
	}
	var analytic, simulated, ci []float64
	for i, sc := range scenarios {
		t.X = append(t.X, float64(i+1))
		t.Notes = append(t.Notes, fmt.Sprintf("scenario %d: %s (K=%d, N=%d)", i+1, sc.label, sc.k, sc.n))
		app := workload.Default(sc.n)
		net, err := buildNet(sc.arch, sc.k, app, sc.dists, cluster.Options{})
		if err != nil {
			return nil, err
		}
		s, err := newSolver(sc.arch, sc.k, app, sc.dists, cluster.Options{})
		if err != nil {
			return nil, err
		}
		exact, err := s.TotalTime(sc.n)
		if err != nil {
			return nil, err
		}
		rep, err := sim.Replicate(sim.Config{Net: net, K: sc.k, N: sc.n, Seed: 7}, reps)
		if err != nil {
			return nil, err
		}
		analytic = append(analytic, exact)
		simulated = append(simulated, rep.MeanTotal)
		ci = append(ci, rep.TotalCI95)
	}
	t.Series = []Series{
		{Label: "analytic", Y: analytic},
		{Label: "simulated", Y: simulated},
		{Label: "sim CI95", Y: ci},
	}
	return t, nil
}

// SimValidation runs the standard validation suite.
func SimValidation() (*Table, error) { return SimValidationTable("tbl-sim", 3000) }

// StateSpaceTable reports the paper's §5.4 state-space reduction: the
// Kronecker product space (2K+1)^K versus the reduced composition
// space for the 4-station central model, C(K+3, K).
func StateSpaceTable() (*Table, error) {
	t := &Table{
		ID:     "tbl-space",
		Title:  "State-space sizes: Kronecker formulation vs reduced product space",
		XLabel: "K",
		YLabel: "states",
	}
	var kron, reduced, ratio []float64
	for k := 1; k <= 8; k++ {
		t.X = append(t.X, float64(k))
		kf, _ := new(big.Float).SetInt(statespace.KroneckerSize(2*k+1, k)).Float64()
		rd := float64(statespace.Compositions(4, k))
		kron = append(kron, kf)
		reduced = append(reduced, rd)
		ratio = append(ratio, kf/rd)
	}
	t.Series = []Series{
		{Label: "Kronecker", Y: kron},
		{Label: "reduced", Y: reduced},
		{Label: "ratio", Y: ratio},
	}
	return t, nil
}
