package experiments

import (
	"testing"
)

func TestCompletionPercentilesShapes(t *testing.T) {
	tab, err := CompletionPercentilesTable("t", CentralArch, 2, 8, []float64{1, 25})
	if err != nil {
		t.Fatal(err)
	}
	mean, p50, p90, p99 := tab.Series[0].Y, tab.Series[1].Y, tab.Series[2].Y, tab.Series[3].Y
	for i := range tab.X {
		if !(p50[i] < p90[i] && p90[i] < p99[i]) {
			t.Fatalf("percentiles not ordered at C²=%v: %v %v %v", tab.X[i], p50[i], p90[i], p99[i])
		}
	}
	// Variability moves the tail much more than the mean.
	meanGrowth := mean[1] / mean[0]
	tailGrowth := p99[1] / p99[0]
	if tailGrowth <= meanGrowth {
		t.Fatalf("p99 growth %v should exceed mean growth %v", tailGrowth, meanGrowth)
	}
}

func TestSchedOverheadShapes(t *testing.T) {
	tab, err := SchedOverheadTable("t", 3, 12, []float64{0.001, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	perNode, central := tab.Series[0].Y, tab.Series[1].Y
	// Overhead always costs time.
	if perNode[1] <= perNode[0] || central[1] <= central[0] {
		t.Fatal("overhead did not increase E(T)")
	}
	// A central scheduler contends; per-node does not.
	if central[1] <= perNode[1] {
		t.Fatalf("central scheduler (%v) should cost more than per-node (%v)", central[1], perNode[1])
	}
}

func TestAvailabilityShapes(t *testing.T) {
	tab, err := AvailabilityTable("t", 3, 12, []float64{0, 0.2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	exact, naive := tab.Series[0].Y, tab.Series[1].Y
	if exact[0] != naive[0] {
		t.Fatal("no failures: models must coincide")
	}
	if exact[1] <= exact[0] {
		t.Fatal("failures did not slow the job")
	}
	// Repair bursts add variability beyond the mean inflation.
	if exact[1] <= naive[1] {
		t.Fatalf("exact (%v) should exceed naive (%v)", exact[1], naive[1])
	}
}

func TestBoundsTableShapes(t *testing.T) {
	tab, err := BoundsTable("t", []int{1, 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.X {
		lo, loB := tab.Series[0].Y[i], tab.Series[1].Y[i]
		pf := tab.Series[2].Y[i]
		hiB, hi := tab.Series[3].Y[i], tab.Series[4].Y[i]
		eff := tab.Series[5].Y[i]
		if !(lo <= pf+1e-9 && pf <= hi+1e-9 && loB <= pf+1e-9 && pf <= hiB+1e-9) {
			t.Fatalf("K=%v: PF %v outside bounds [%v,%v]/[%v,%v]", tab.X[i], pf, lo, hi, loB, hiB)
		}
		// The finite workload pays transient+drain: effective
		// throughput below the steady PF value (equal at K=1, where
		// every epoch is a full task and there is nothing to fill).
		if tab.X[i] == 1 {
			if diff := eff - pf; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("K=1: transient %v should equal PF %v", eff, pf)
			}
		} else if eff >= pf {
			t.Fatalf("K=%v: transient throughput %v not below PF %v", tab.X[i], eff, pf)
		}
	}
}

func TestClassMixShapes(t *testing.T) {
	tab, err := ClassMixTable("t", 8, 2, 4, []int{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	random, bf := tab.Series[0].Y, tab.Series[1].Y
	// Pure workloads: policies coincide.
	for _, i := range []int{0, 2} {
		if diff := random[i] - bf[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pure workload %d: policies differ (%v vs %v)", i, random[i], bf[i])
		}
	}
	// Mixed: batch-first wins (starts long tasks early).
	if bf[1] >= random[1] {
		t.Fatalf("batch-first (%v) should beat random (%v)", bf[1], random[1])
	}
	// More batch work → longer job.
	if !(random[0] < random[1] && random[1] < random[2]) {
		t.Fatalf("E(T) not increasing in batch share: %v", random)
	}
}

func TestMultitaskShapes(t *testing.T) {
	tab, err := MultitaskTable("t", 3, []int{1, 2}, 18)
	if err != nil {
		t.Fatal(err)
	}
	totals := tab.Series[0].Y
	// Multiprogramming two tasks per node overlaps compute with I/O:
	// strictly faster than one task per node at these loads.
	if totals[1] >= totals[0] {
		t.Fatalf("degree 2 (%v) not faster than degree 1 (%v)", totals[1], totals[0])
	}
	speedups := tab.Series[1].Y
	if speedups[1] <= speedups[0] {
		t.Fatal("speedup should rise with multiprogramming here")
	}
}
