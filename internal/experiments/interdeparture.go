package experiments

import (
	"fmt"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// Variant is one curve of an interdeparture figure: a label plus the
// service-shape assignment it uses.
type Variant struct {
	Label string
	Dists cluster.Dists
	Opts  cluster.Options
}

// InterdepartureTable computes the mean inter-departure time of every
// epoch (task order 1..N) for each variant — the quantity plotted in
// the paper's Figures 3, 4, 10 and 11, whose three regions (transient
// fill, steady feeding, draining) are the model's signature.
func InterdepartureTable(id, title string, arch Arch, k int, app workload.App, variants []Variant) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "task order",
		YLabel: "inter-departure time",
		Notes: []string{
			fmt.Sprintf("%s cluster, K=%d workstations, N=%d tasks, E(T)=%.3g", arch, k, app.N, app.SingleTaskTime()),
		},
	}
	for i := 1; i <= app.N; i++ {
		t.X = append(t.X, float64(i))
	}
	for _, v := range variants {
		s, err := newSolver(arch, k, app, v.Dists, v.Opts)
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", id, v.Label, err)
		}
		res, err := s.Solve(app.N)
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", id, v.Label, err)
		}
		t.Series = append(t.Series, Series{Label: v.Label, Y: res.Epochs})
	}
	return t, nil
}

// sharedServerVariants is the §6.1 sweep: remote storage exponential
// vs hyperexponential at C² = 10 and 50.
func sharedServerVariants() []Variant {
	return []Variant{
		{Label: "Exp"},
		{Label: "H2 C2=10", Dists: distsFor(CompRemote, cluster.WithCV2(10))},
		{Label: "H2 C2=50", Dists: distsFor(CompRemote, cluster.WithCV2(50))},
	}
}

// dedicatedServerVariants is the §6.2 sweep: CPU exponential vs
// Erlang-3 vs H2 with C² = 2.
func dedicatedServerVariants() []Variant {
	return []Variant{
		{Label: "Exp"},
		{Label: "E3", Dists: distsFor(CompCPU, cluster.ErlangStages(3))},
		{Label: "H2 C2=2", Dists: distsFor(CompCPU, cluster.WithCV2(2))},
	}
}

// Fig3 reproduces Figure 3: a 30-task application on a 5-workstation
// central cluster with a non-exponential shared server.
func Fig3() (*Table, error) {
	return InterdepartureTable("fig3",
		"Inter-departure time by task order, central K=5, shared server non-exponential",
		CentralArch, 5, workload.Default(30), sharedServerVariants())
}

// Fig4 reproduces Figure 4: the same application on 8 workstations.
func Fig4() (*Table, error) {
	return InterdepartureTable("fig4",
		"Inter-departure time by task order, central K=8, shared server non-exponential",
		CentralArch, 8, workload.Default(30), sharedServerVariants())
}

// Fig10 reproduces Figure 10: a 20-task application on a
// 5-workstation distributed cluster with non-exponential dedicated
// servers (CPUs).
func Fig10() (*Table, error) {
	return InterdepartureTable("fig10",
		"Inter-departure time by task order, distributed K=5, dedicated servers non-exponential",
		DistributedArch, 5, workload.Default(20), dedicatedServerVariants())
}

// Fig11 reproduces Figure 11: a 30-task application on an
// 8-workstation central cluster with non-exponential CPUs.
func Fig11() (*Table, error) {
	return InterdepartureTable("fig11",
		"Inter-departure time by task order, central K=8, dedicated servers non-exponential",
		CentralArch, 8, workload.Default(30), dedicatedServerVariants())
}
