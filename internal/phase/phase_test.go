package phase

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, relTol float64, what string) {
	t.Helper()
	denom := math.Abs(want)
	if denom < 1 {
		denom = 1
	}
	if math.Abs(got-want)/denom > relTol {
		t.Fatalf("%s = %v, want %v (rel tol %v)", what, got, want, relTol)
	}
}

func TestExpoMoments(t *testing.T) {
	d := MustExpo(2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, d.Mean(), 0.5, 1e-12, "mean")
	approx(t, d.Moment(2), 2*0.25, 1e-12, "E[T²]")
	approx(t, d.Variance(), 0.25, 1e-12, "variance")
	approx(t, d.CV2(), 1, 1e-12, "C²")
}

func TestExpoCDF(t *testing.T) {
	d := MustExpo(3)
	for _, tt := range []float64{0.1, 0.5, 1, 2} {
		approx(t, d.CDF(tt), 1-math.Exp(-3*tt), 1e-10, "CDF")
		approx(t, d.PDF(tt), 3*math.Exp(-3*tt), 1e-10, "PDF")
		approx(t, d.Reliability(tt), math.Exp(-3*tt), 1e-10, "R")
	}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Fatal("CDF at t<=0 should be 0")
	}
	if d.Reliability(0) != 1 {
		t.Fatal("R(0) should be 1")
	}
}

func TestErlangMoments(t *testing.T) {
	for m := 1; m <= 6; m++ {
		d := MustErlang(m, float64(m)) // mean 1
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		approx(t, d.Mean(), 1, 1e-10, "Erlang mean")
		approx(t, d.CV2(), 1/float64(m), 1e-10, "Erlang C²")
	}
}

func TestErlangMean(t *testing.T) {
	d := MustErlangMean(3, 12)
	approx(t, d.Mean(), 12, 1e-10, "ErlangMean mean")
	approx(t, d.CV2(), 1.0/3, 1e-10, "ErlangMean C²")
}

func TestErlangCDFKnown(t *testing.T) {
	// Erlang-2 with rate 1 per stage: F(t) = 1 − e^{−t}(1+t).
	d := MustErlang(2, 1)
	for _, tt := range []float64{0.5, 1, 2, 4} {
		want := 1 - math.Exp(-tt)*(1+tt)
		approx(t, d.CDF(tt), want, 1e-9, "Erlang2 CDF")
	}
}

func TestHyperMoments(t *testing.T) {
	d := MustHyper([]float64{0.3, 0.7}, []float64{1, 5})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	wantMean := 0.3/1 + 0.7/5
	approx(t, d.Mean(), wantMean, 1e-12, "Hyper mean")
	wantM2 := 2 * (0.3/1 + 0.7/25)
	approx(t, d.Moment(2), wantM2, 1e-12, "Hyper E[T²]")
}

func TestHyperCDFIsMixture(t *testing.T) {
	d := MustHyper([]float64{0.4, 0.6}, []float64{2, 0.5})
	for _, tt := range []float64{0.2, 1, 3} {
		want := 0.4*(1-math.Exp(-2*tt)) + 0.6*(1-math.Exp(-0.5*tt))
		approx(t, d.CDF(tt), want, 1e-9, "Hyper CDF")
	}
}

func TestHyperExpFitMatchesTargets(t *testing.T) {
	for _, cv2 := range []float64{1, 2, 5, 10, 50, 100} {
		d := MustHyperExpFit(12, cv2)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		approx(t, d.Mean(), 12, 1e-9, "fit mean")
		approx(t, d.CV2(), cv2, 1e-9, "fit C²")
	}
}

func TestHyperExpFitRejectsLowCV2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustHyperExpFit(1, 0.5) did not panic")
		}
	}()
	MustHyperExpFit(1, 0.5)
}

func TestHyperExpFitPDF0(t *testing.T) {
	// The balanced-means fit has some f0; asking for that f0 must
	// reproduce mean and cv2 (and approximately that pdf(0)).
	base := MustHyperExpFit(2, 8)
	f0 := base.PDF0()
	d, err := HyperExpFitPDF0(2, 8, f0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Mean(), 2, 1e-6, "pdf0-fit mean")
	approx(t, d.CV2(), 8, 1e-6, "pdf0-fit C²")
	approx(t, d.PDF0(), f0, 1e-6, "pdf0-fit f(0)")
}

func TestHyperExpFitPDF0Infeasible(t *testing.T) {
	if _, err := HyperExpFitPDF0(2, 8, 1e9); err == nil {
		t.Fatal("expected infeasible f0 to error")
	}
	if _, err := HyperExpFitPDF0(2, 0.5, 1); err == nil {
		t.Fatal("expected cv2<1 to error")
	}
}

func TestCoxian2Fit(t *testing.T) {
	for _, cv2 := range []float64{0.5, 0.7, 1, 2} {
		d := MustCoxian2(5, cv2)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		approx(t, d.Mean(), 5, 1e-9, "Coxian mean")
		approx(t, d.CV2(), cv2, 1e-9, "Coxian C²")
	}
}

func TestFitCV2Families(t *testing.T) {
	if d := MustFitCV2(3, 1); d.Dim() != 1 {
		t.Fatal("FitCV2 at cv2=1 should be exponential")
	}
	if d := MustFitCV2(3, 0.5); d.Dim() != 2 {
		t.Fatal("FitCV2 at cv2=0.5 should be Erlang-2")
	}
	d := MustFitCV2(3, 10)
	approx(t, d.Mean(), 3, 1e-9, "FitCV2 mean")
	approx(t, d.CV2(), 10, 1e-9, "FitCV2 C²")
	// Erlang m=round(1/cv2) is exact only at reciprocals of ints.
	d3 := MustFitCV2(3, 1.0/3)
	approx(t, d3.CV2(), 1.0/3, 1e-9, "FitCV2 Erlang-3 C²")
}

func TestTPTProperties(t *testing.T) {
	d := MustTPT(10, 1.4, 12)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, d.Mean(), 12, 1e-9, "TPT mean")
	if d.CV2() <= 1 {
		t.Fatalf("TPT C² = %v, want > 1 (heavy tail)", d.CV2())
	}
	// More phases → heavier truncated tail → larger C².
	if MustTPT(14, 1.4, 12).CV2() <= d.CV2() {
		t.Fatal("TPT C² should grow with truncation length")
	}
}

func TestScaleMean(t *testing.T) {
	d := MustHyperExpFit(1, 5).ScaleMean(42)
	approx(t, d.Mean(), 42, 1e-9, "scaled mean")
	approx(t, d.CV2(), 5, 1e-9, "scale preserves C²")
}

func TestValidateCatchesBrokenDistributions(t *testing.T) {
	good := MustExpo(1)
	bad := &PH{Alpha: []float64{0.5, 0.4}, Rates: good.Rates, Trans: good.Trans}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted alpha summing to 0.9")
	}
	bad2 := MustErlang(2, 1)
	bad2.Rates[0] = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted negative rate")
	}
	bad3 := MustErlang(2, 1)
	bad3.Trans.Set(0, 0, 0.9)
	bad3.Trans.Set(0, 1, 0.9)
	if err := bad3.Validate(); err == nil {
		t.Fatal("Validate accepted row sum > 1")
	}
}

// Property: moments computed by n!Ψ[Vⁿ] match direct integration of
// the reliability function (E[Tⁿ] = n∫ t^{n-1}R(t)dt) for random H2
// and Erlang mixes.
func TestMomentMatchesNumericIntegrationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var d *PH
		if r.Intn(2) == 0 {
			d = MustErlangMean(1+r.Intn(4), 0.5+2*r.Float64())
		} else {
			d = MustHyperExpFit(0.5+2*r.Float64(), 1+9*r.Float64())
		}
		want := d.Moment(2)
		// Trapezoid on 2∫ t·R(t) dt with adaptive-ish fine grid.
		upper := d.Mean() * 60 * math.Max(1, d.CV2())
		n := 6000
		h := upper / float64(n)
		var integral float64
		for i := 0; i <= n; i++ {
			tt := float64(i) * h
			v := tt * reliabilityScalar(d, tt)
			if i == 0 || i == n {
				v /= 2
			}
			integral += v
		}
		got := 2 * integral * h
		return math.Abs(got-want)/want < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// reliabilityScalar avoids Expm for the mixture/series families used
// in the property test: both have closed forms.
func reliabilityScalar(d *PH, t float64) float64 {
	switch {
	case d.Dim() == 1:
		return math.Exp(-d.Rates[0] * t)
	case d.Trans.At(0, 0) == 0 && d.Alpha[0] != 1: // hyper
		var r float64
		for i, p := range d.Alpha {
			r += p * math.Exp(-d.Rates[i]*t)
		}
		return r
	default: // erlang
		m := d.Dim()
		mu := d.Rates[0]
		var r, term float64
		term = 1
		for k := 0; k < m; k++ {
			if k > 0 {
				term *= mu * t / float64(k)
			}
			r += term
		}
		return r * math.Exp(-mu*t)
	}
}

// Property: sampled means converge to analytic means (seeded, loose
// statistical tolerance).
func TestSampleMeanProperty(t *testing.T) {
	dists := []*PH{
		MustExpo(1),
		MustErlangMean(3, 2),
		MustHyperExpFit(2, 10),
		MustCoxian2(1.5, 0.7),
		MustTPT(8, 1.5, 3),
	}
	rng := rand.New(rand.NewSource(42))
	for _, d := range dists {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		got := sum / n
		want := d.Mean()
		// 5 sigma of the sample-mean distribution.
		sigma := math.Sqrt(d.Variance() / n)
		if math.Abs(got-want) > 5*sigma+1e-9 {
			t.Errorf("%v: sample mean %v, want %v ± %v", d, got, want, 5*sigma)
		}
	}
}

func TestSampleCDFAgreement(t *testing.T) {
	// Empirical CDF at a few quantile points vs analytic CDF.
	d := MustHyperExpFit(1, 4)
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	points := []float64{0.1, 0.5, 1, 2, 5}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		for j, p := range points {
			if x <= p {
				counts[j]++
			}
		}
	}
	for j, p := range points {
		got := float64(counts[j]) / n
		want := d.CDF(p)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical CDF(%v) = %v, analytic %v", p, got, want)
		}
	}
}

func TestPDF0(t *testing.T) {
	d := MustHyper([]float64{0.25, 0.75}, []float64{4, 1})
	approx(t, d.PDF0(), 0.25*4+0.75*1, 1e-12, "PDF0")
	// Erlang-m (m≥2) has pdf(0) = 0.
	approx(t, MustErlang(3, 1).PDF0(), 0, 1e-12, "Erlang PDF0")
}

func TestMomentZeroAndPanics(t *testing.T) {
	d := MustExpo(1)
	if d.Moment(0) != 1 {
		t.Fatal("E[T⁰] should be 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative moment order did not panic")
		}
	}()
	d.Moment(-1)
}
