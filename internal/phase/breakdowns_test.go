package phase

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The preemptive-resume construction inflates the mean by exactly
// 1 + f/r for any base distribution.
func TestBreakdownsMeanInflation(t *testing.T) {
	for _, d := range []*PH{
		MustExpo(2),
		MustErlangMean(3, 1.5),
		MustHyperExpFit(1, 10),
		MustCoxian2(2, 0.8),
	} {
		for _, fr := range [][2]float64{{0.1, 1}, {0.5, 0.25}, {2, 4}} {
			fail, repair := fr[0], fr[1]
			b := MustWithBreakdowns(d, fail, repair)
			if err := b.Validate(); err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			want := d.Mean() * (1 + fail/repair)
			if math.Abs(b.Mean()-want) > 1e-9*want {
				t.Fatalf("%v f=%v r=%v: mean %v, want %v", d, fail, repair, b.Mean(), want)
			}
		}
	}
}

func TestBreakdownsZeroFailIsIdentity(t *testing.T) {
	d := MustHyperExpFit(2, 5)
	b := MustWithBreakdowns(d, 0, 1)
	if math.Abs(b.Mean()-d.Mean()) > 1e-12 || math.Abs(b.CV2()-d.CV2()) > 1e-9 {
		t.Fatal("zero failure rate should not change the distribution")
	}
}

// Breakdowns add variability: C² strictly grows.
func TestBreakdownsIncreaseVariability(t *testing.T) {
	d := MustExpo(1)
	b := MustWithBreakdowns(d, 0.5, 0.5)
	if b.CV2() <= d.CV2() {
		t.Fatalf("C² %v should exceed base %v", b.CV2(), d.CV2())
	}
}

// Sampled means agree with the analytic inflation (seeded).
func TestBreakdownsSampling(t *testing.T) {
	d := MustErlangMean(2, 1)
	b := MustWithBreakdowns(d, 1, 2)
	rng := rand.New(rand.NewSource(12))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += b.Sample(rng)
	}
	got := sum / n
	want := b.Mean()
	sigma := math.Sqrt(b.Variance() / n)
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("sample mean %v, want %v ± %v", got, want, 5*sigma)
	}
}

// Property: inflation law holds across random parameters.
func TestBreakdownsMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := MustHyperExpFit(0.5+2*r.Float64(), 1+5*r.Float64())
		fail := 0.05 + 2*r.Float64()
		repair := 0.1 + 3*r.Float64()
		b := MustWithBreakdowns(d, fail, repair)
		want := d.Mean() * (1 + fail/repair)
		return math.Abs(b.Mean()-want) < 1e-8*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative failure rate did not panic")
		}
	}()
	MustWithBreakdowns(MustExpo(1), -1, 1)
}
