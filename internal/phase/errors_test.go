package phase

import (
	"errors"
	"math"
	"testing"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

// Every constructor must refuse malformed parameters with an error
// matching check.ErrInvalidModel — never a panic, never a NaN-laden
// distribution.
func TestConstructorsRejectBadInput(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		make func() (*PH, error)
	}{
		{"Expo zero rate", func() (*PH, error) { return Expo(0) }},
		{"Expo NaN rate", func() (*PH, error) { return Expo(nan) }},
		{"ExpoMean negative", func() (*PH, error) { return ExpoMean(-1) }},
		{"ExpoMean Inf", func() (*PH, error) { return ExpoMean(math.Inf(1)) }},
		{"Erlang zero stages", func() (*PH, error) { return Erlang(0, 1) }},
		{"Erlang NaN rate", func() (*PH, error) { return Erlang(2, nan) }},
		{"ErlangMean zero mean", func() (*PH, error) { return ErlangMean(2, 0) }},
		{"Hyper empty", func() (*PH, error) { return Hyper(nil, nil) }},
		{"Hyper mismatched", func() (*PH, error) { return Hyper([]float64{1}, []float64{1, 2}) }},
		{"Hyper bad sum", func() (*PH, error) { return Hyper([]float64{0.3, 0.3}, []float64{1, 2}) }},
		{"Hyper NaN prob", func() (*PH, error) { return Hyper([]float64{nan, 1}, []float64{1, 2}) }},
		{"Hyper zero rate", func() (*PH, error) { return Hyper([]float64{0.5, 0.5}, []float64{1, 0}) }},
		{"HyperExpFit cv2<1", func() (*PH, error) { return HyperExpFit(1, 0.5) }},
		{"HyperExpFit NaN cv2", func() (*PH, error) { return HyperExpFit(1, nan) }},
		{"Coxian2 cv2<0.5", func() (*PH, error) { return Coxian2(1, 0.2) }},
		{"Coxian2 NaN mean", func() (*PH, error) { return Coxian2(nan, 1) }},
		{"FitCV2 zero cv2", func() (*PH, error) { return FitCV2(1, 0) }},
		{"FitCV2 negative mean", func() (*PH, error) { return FitCV2(-2, 1) }},
		{"TPT zero branches", func() (*PH, error) { return TPT(0, 1.4, 1) }},
		{"TPT zero alpha", func() (*PH, error) { return TPT(4, 0, 1) }},
		{"TPT NaN mean", func() (*PH, error) { return TPT(4, 1.4, nan) }},
		{"PDF0 cv2<=1", func() (*PH, error) { return HyperExpFitPDF0(1, 1, 2) }},
		{"PDF0 zero f0", func() (*PH, error) { return HyperExpFitPDF0(1, 4, 0) }},
		{"Breakdowns negative fail", func() (*PH, error) { return WithBreakdowns(MustExpo(1), -1, 1) }},
		{"Breakdowns zero repair", func() (*PH, error) { return WithBreakdowns(MustExpo(1), 1, 0) }},
		{"Breakdowns invalid dist", func() (*PH, error) {
			bad := &PH{Alpha: []float64{1}, Rates: []float64{-1}, Trans: matrix.New(1, 1)}
			return WithBreakdowns(bad, 1, 1)
		}},
	}
	for _, tc := range cases {
		d, err := tc.make()
		if err == nil {
			t.Errorf("%s: no error (got %v)", tc.name, d)
			continue
		}
		if !errors.Is(err, check.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", tc.name, err)
		}
	}
}

// Validate must flag an absorbing internal phase — a trap state with
// no path to service completion makes B singular.
func TestValidateCatchesAbsorbingPhase(t *testing.T) {
	trans := matrix.New(2, 2)
	trans.Set(0, 1, 1) // phase 0 → phase 1
	trans.Set(1, 1, 1) // phase 1 loops forever
	d := &PH{Alpha: []float64{1, 0}, Rates: []float64{1, 1}, Trans: trans}
	err := d.Validate()
	if err == nil {
		t.Fatal("absorbing phase not detected")
	}
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("err = %v, want ErrInvalidModel", err)
	}
}

// Validate must flag NaN contamination that the old sum checks let
// through (NaN comparisons are always false).
func TestValidateCatchesNaN(t *testing.T) {
	nan := math.NaN()
	good := MustExpo(1)
	bad1 := &PH{Alpha: []float64{nan}, Rates: good.Rates, Trans: good.Trans}
	if err := bad1.Validate(); err == nil || !errors.Is(err, check.ErrInvalidModel) {
		t.Errorf("NaN alpha: err = %v", err)
	}
	trans := matrix.New(1, 1)
	trans.Set(0, 0, nan)
	bad2 := &PH{Alpha: []float64{1}, Rates: []float64{1}, Trans: trans}
	if err := bad2.Validate(); err == nil || !errors.Is(err, check.ErrInvalidModel) {
		t.Errorf("NaN trans: err = %v", err)
	}
}

// The Must wrappers return identical distributions for valid input
// and panic (with the typed error) on invalid input.
func TestMustWrappers(t *testing.T) {
	if d := MustHyperExpFit(2, 8); d.Dim() != 2 {
		t.Fatalf("MustHyperExpFit dim = %d", d.Dim())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustExpo(-1) did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("panic value %v, want ErrInvalidModel error", r)
		}
	}()
	MustExpo(-1)
}
