package phase

import (
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

// Expo returns the exponential distribution with rate µ (mean 1/µ).
func Expo(mu float64) (*PH, error) {
	if err := check.Positive("rate", mu); err != nil {
		return nil, fmt.Errorf("phase: Expo: %w", err)
	}
	return &PH{
		Name:  "Exp",
		Alpha: []float64{1},
		Rates: []float64{mu},
		Trans: matrix.New(1, 1),
	}, nil
}

// ExpoMean returns the exponential distribution with the given mean.
func ExpoMean(mean float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: ExpoMean: %w", err)
	}
	return Expo(1 / mean)
}

// Erlang returns the Erlang-m distribution: m identical exponential
// stages in series, each with rate mu. Mean m/µ, C² = 1/m.
func Erlang(m int, mu float64) (*PH, error) {
	if err := check.Count("stages", m, 1); err != nil {
		return nil, fmt.Errorf("phase: Erlang: %w", err)
	}
	if err := check.Positive("rate", mu); err != nil {
		return nil, fmt.Errorf("phase: Erlang: %w", err)
	}
	alpha := matrix.Unit(m, 0)
	rates := make([]float64, m)
	trans := matrix.New(m, m)
	for i := 0; i < m; i++ {
		rates[i] = mu
		if i+1 < m {
			trans.Set(i, i+1, 1)
		}
	}
	return &PH{Name: fmt.Sprintf("E%d", m), Alpha: alpha, Rates: rates, Trans: trans}, nil
}

// ErlangMean returns the Erlang-m distribution with the given mean
// (stage rate m/mean).
func ErlangMean(m int, mean float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: ErlangMean: %w", err)
	}
	if err := check.Count("stages", m, 1); err != nil {
		return nil, fmt.Errorf("phase: ErlangMean: %w", err)
	}
	return Erlang(m, float64(m)/mean)
}

// Hyper returns the hyperexponential distribution that picks branch i
// with probability probs[i] and serves at rate rates[i]; its density
// is Σ pᵢµᵢ·exp(−µᵢt) (paper §5.4.2).
func Hyper(probs, rates []float64) (*PH, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("phase: Hyper: %w",
			check.Invalid("need matching non-empty probs (%d) and rates (%d)", len(probs), len(rates)))
	}
	if err := check.ProbVec("probs", probs); err != nil {
		return nil, fmt.Errorf("phase: Hyper: %w", err)
	}
	if err := check.PositiveVec("rates", rates); err != nil {
		return nil, fmt.Errorf("phase: Hyper: %w", err)
	}
	m := len(probs)
	return &PH{
		Name:  fmt.Sprintf("H%d", m),
		Alpha: append([]float64(nil), probs...),
		Rates: append([]float64(nil), rates...),
		Trans: matrix.New(m, m),
	}, nil
}

// HyperExpFit returns a two-phase hyperexponential with the given
// mean and squared coefficient of variation cv2 ≥ 1, using the
// balanced-means fit (each branch contributes half the mean):
//
//	p = (1 + sqrt((C²−1)/(C²+1)))/2,  µ₁ = 2p/mean,  µ₂ = 2(1−p)/mean.
//
// cv2 == 1 degenerates to the exponential.
func HyperExpFit(mean, cv2 float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: HyperExpFit: %w", err)
	}
	if err := check.Finite("cv2", cv2); err != nil {
		return nil, fmt.Errorf("phase: HyperExpFit: %w", err)
	}
	if cv2 < 1 {
		return nil, fmt.Errorf("phase: HyperExpFit: %w",
			check.Invalid("cv2 is %v, want >= 1 (use Erlang/Coxian below 1)", cv2))
	}
	if cv2 == 1 {
		return ExpoMean(mean)
	}
	p := 0.5 * (1 + math.Sqrt((cv2-1)/(cv2+1)))
	mu1 := 2 * p / mean
	mu2 := 2 * (1 - p) / mean
	d, err := Hyper([]float64{p, 1 - p}, []float64{mu1, mu2})
	if err != nil {
		return nil, err
	}
	d.Name = "H2"
	return d, nil
}

// HyperExpFitPDF0 returns a two-phase hyperexponential matching the
// mean, cv2 ≥ 1 and the density at the origin f0 = p·µ₁ + (1−p)·µ₂ —
// the third-parameter fit the paper proposes (§5.4.2). It searches
// the one-parameter family of valid H2 fits by bisection on the
// branch probability. Not every (mean, cv2, f0) triple is feasible;
// an error is returned when f0 is out of range.
func HyperExpFitPDF0(mean, cv2, f0 float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: HyperExpFitPDF0: %w", err)
	}
	if err := check.Positive("f0", f0); err != nil {
		return nil, fmt.Errorf("phase: HyperExpFitPDF0: %w", err)
	}
	if err := check.Finite("cv2", cv2); err != nil {
		return nil, fmt.Errorf("phase: HyperExpFitPDF0: %w", err)
	}
	if cv2 <= 1 {
		return nil, fmt.Errorf("phase: pdf(0) fit needs cv2 > 1, got %v: %w", cv2, check.ErrInvalidModel)
	}
	// Parameterize by p ∈ (pmin, 1): given p, matching mean and cv2
	// fixes µ1, µ2 via the two-moment equations. Balanced-means is one
	// interior point. Solve the quadratic for x = p/µ1:
	//   p/µ1 + (1-p)/µ2 = mean
	//   2(p/µ1² + (1-p)/µ2²) = (cv2+1)·mean²
	f0At := func(p float64) (float64, bool) {
		// With y = (mean − x)/(1−p)·? — derive: let x=1/µ1, y=1/µ2.
		// p·x + (1−p)·y = mean ; p·x² + (1−p)·y² = (cv2+1)/2·mean².
		m2 := (cv2 + 1) / 2 * mean * mean
		// Solve for x (take the smaller-mean fast branch):
		// y = (mean − p·x)/(1−p); substitute:
		// p·x² + (mean − p·x)²/(1−p) = m2
		// (p + p²/(1−p))·x² − 2·mean·p/(1−p)·x + mean²/(1−p) − m2 = 0
		a := p + p*p/(1-p)
		bq := -2 * mean * p / (1 - p)
		c := mean*mean/(1-p) - m2
		disc := bq*bq - 4*a*c
		if disc < 0 {
			return 0, false
		}
		x := (-bq - math.Sqrt(disc)) / (2 * a) // fast branch: small mean 1/µ1... x is E of branch 1
		if x <= 0 {
			return 0, false
		}
		y := (mean - p*x) / (1 - p)
		if y <= 0 {
			return 0, false
		}
		return p/x + (1-p)/y, true
	}
	// The feasible p-interval is strict (the two-moment equations need
	// a non-negative discriminant and positive branch means); scan a
	// grid for a bracket around the target f0, then bisect inside it.
	const grid = 4096
	var lo, hi, fLo float64
	found := false
	prevP, prevF := math.NaN(), math.NaN()
	for i := 1; i < grid; i++ {
		p := float64(i) / grid
		f, ok := f0At(p)
		if !ok {
			prevP, prevF = math.NaN(), math.NaN()
			continue
		}
		if !math.IsNaN(prevP) && (prevF-f0)*(f-f0) <= 0 {
			lo, hi, fLo = prevP, p, prevF
			found = true
			break
		}
		prevP, prevF = p, f
	}
	if !found {
		return nil, fmt.Errorf("phase: f0=%v not achievable for mean=%v cv2=%v: %w", f0, mean, cv2, check.ErrInvalidModel)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		fMid, ok := f0At(mid)
		if !ok {
			return nil, fmt.Errorf("phase: pdf(0) fit failed at p=%v: %w", mid, check.ErrNumeric)
		}
		if (fMid-f0)*(fLo-f0) <= 0 {
			hi = mid
		} else {
			lo, fLo = mid, fMid
		}
	}
	p := (lo + hi) / 2
	m2 := (cv2 + 1) / 2 * mean * mean
	a := p + p*p/(1-p)
	bq := -2 * mean * p / (1 - p)
	c := mean*mean/(1-p) - m2
	x := (-bq - math.Sqrt(bq*bq-4*a*c)) / (2 * a)
	y := (mean - p*x) / (1 - p)
	d, err := Hyper([]float64{p, 1 - p}, []float64{1 / x, 1 / y})
	if err != nil {
		return nil, err
	}
	d.Name = "H2"
	return d, nil
}

// Coxian2 returns a two-phase Coxian distribution with the given mean
// and cv2 ∈ [0.5, ∞). Coxian-2 covers the C² gap between Erlang-2
// (0.5) and the hyperexponentials (≥1), so together the families span
// every C² ≥ 0.5 at two phases or fewer.
func Coxian2(mean, cv2 float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: Coxian2: %w", err)
	}
	if err := check.Finite("cv2", cv2); err != nil {
		return nil, fmt.Errorf("phase: Coxian2: %w", err)
	}
	if cv2 < 0.5 {
		return nil, fmt.Errorf("phase: Coxian2: %w", check.Invalid("cv2 is %v, want >= 0.5", cv2))
	}
	// Marie's fit: µ1 = 2/mean, b = 1/(2·cv2), µ2 = b·µ1... use the
	// standard two-moment Coxian fit:
	mu1 := 2 / mean
	b := 0.5 / cv2
	mu2 := mu1 * b
	trans := matrix.New(2, 2)
	trans.Set(0, 1, b)
	d := &PH{
		Name:  "Cox2",
		Alpha: []float64{1, 0},
		Rates: []float64{mu1, mu2},
		Trans: trans,
	}
	return d.ScaleMean(mean), nil
}

// FitCV2 returns a phase-type distribution with the given mean and
// squared coefficient of variation, choosing the family the paper
// uses for that variability regime: Erlang-m for cv2 ≤ 1 (m =
// round(1/cv2), exact when 1/cv2 is an integer), exponential at
// cv2 = 1, and a balanced-means H2 for cv2 > 1.
func FitCV2(mean, cv2 float64) (*PH, error) {
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: FitCV2: %w", err)
	}
	if err := check.Positive("cv2", cv2); err != nil {
		return nil, fmt.Errorf("phase: FitCV2: %w", err)
	}
	switch {
	case cv2 < 1:
		m := int(math.Round(1 / cv2))
		if m < 2 {
			m = 2
		}
		return ErlangMean(m, mean)
	case cv2 == 1:
		return ExpoMean(mean)
	default:
		return HyperExpFit(mean, cv2)
	}
}

// TPT returns Lipsky's truncated power-tail distribution: an
// m-branch hyperexponential with geometrically decaying branch
// probabilities pᵢ ∝ θ^i and rates µᵢ = µ·γ^{−i}, where θ·γ^α = 1
// fixes the tail exponent α. As m → ∞ the reliability function decays
// like t^{−α}; with finite m the first ⌈α⌉ moments are finite, which
// is what makes it usable inside a matrix model. The result is scaled
// to the requested mean.
func TPT(m int, alpha, mean float64) (*PH, error) {
	if err := check.Count("branches", m, 1); err != nil {
		return nil, fmt.Errorf("phase: TPT: %w", err)
	}
	if err := check.Positive("alpha", alpha); err != nil {
		return nil, fmt.Errorf("phase: TPT: %w", err)
	}
	if err := check.Positive("mean", mean); err != nil {
		return nil, fmt.Errorf("phase: TPT: %w", err)
	}
	const theta = 0.5
	gamma := math.Pow(theta, -1/alpha)
	probs := make([]float64, m)
	rates := make([]float64, m)
	var norm float64
	for i := 0; i < m; i++ {
		probs[i] = math.Pow(theta, float64(i))
		norm += probs[i]
	}
	for i := 0; i < m; i++ {
		probs[i] /= norm
		rates[i] = math.Pow(gamma, -float64(i))
	}
	d, err := Hyper(probs, rates)
	if err != nil {
		return nil, err
	}
	d.Name = fmt.Sprintf("TPT%d(a=%.3g)", m, alpha)
	// Small tail exponents spread the branch rates over gamma^(m−1);
	// past the float64 range that under/overflows into a distribution
	// with non-finite moments. Reject it rather than return garbage.
	out := d.ScaleMean(mean)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("phase: TPT: %d branches with tail exponent %g exceed float64 range: %w", m, alpha, err)
	}
	return out, nil
}
