package phase

import (
	"math/rand"
	"testing"
)

func BenchmarkSampleH2(b *testing.B) {
	d := MustHyperExpFit(1, 10)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(rng)
	}
}

func BenchmarkSampleErlang4(b *testing.B) {
	d := MustErlangMean(4, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(rng)
	}
}

func BenchmarkCDFTPT12(b *testing.B) {
	d := MustTPT(12, 1.4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.CDF(2.5)
	}
}

func BenchmarkMoment3(b *testing.B) {
	d := MustTPT(12, 1.4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Moment(3)
	}
}
