package phase

import (
	"math"
	"math/rand"
	"testing"
)

func sampleN(rng *rand.Rand, d *PH, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// EM on data generated from a known H2 recovers its mean and C².
func TestFitHyperEMRecoversH2(t *testing.T) {
	truth := MustHyperExpFit(2, 8)
	rng := rand.New(rand.NewSource(4))
	samples := sampleN(rng, truth, 60000)
	res, err := FitHyperEM(samples, 2, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("EM did not converge")
	}
	if math.Abs(res.Dist.Mean()-truth.Mean())/truth.Mean() > 0.05 {
		t.Fatalf("fitted mean %v, truth %v", res.Dist.Mean(), truth.Mean())
	}
	if math.Abs(res.Dist.CV2()-truth.CV2())/truth.CV2() > 0.25 {
		t.Fatalf("fitted C² %v, truth %v", res.Dist.CV2(), truth.CV2())
	}
}

// EM on exponential data should produce a near-degenerate mixture.
func TestFitHyperEMExponentialData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := sampleN(rng, MustExpo(2), 30000)
	res, err := FitHyperEM(samples, 2, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist.Mean()-0.5)/0.5 > 0.05 {
		t.Fatalf("fitted mean %v, want ~0.5", res.Dist.Mean())
	}
	if res.Dist.CV2() > 1.15 {
		t.Fatalf("fitted C² %v on exponential data", res.Dist.CV2())
	}
}

// The EM log-likelihood must beat (or match) the naive single
// exponential with the sample mean.
func TestFitHyperEMBeatsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth := MustHyperExpFit(1, 15)
	samples := sampleN(rng, truth, 20000)
	res, err := FitHyperEM(samples, 3, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, x := range samples {
		mean += x
	}
	mean /= float64(len(samples))
	expLL, err := LogLikelihood(MustExpoMean(mean), samples)
	if err != nil {
		t.Fatal(err)
	}
	fitLL, err := LogLikelihood(res.Dist, samples)
	if err != nil {
		t.Fatal(err)
	}
	if fitLL <= expLL {
		t.Fatalf("EM fit LL %v not above exponential LL %v", fitLL, expLL)
	}
	if math.Abs(fitLL-res.LogLikelihood) > 1e-6*math.Abs(fitLL) {
		t.Fatalf("reported LL %v disagrees with recomputed %v", res.LogLikelihood, fitLL)
	}
}

func TestFitHyperEMValidation(t *testing.T) {
	if _, err := FitHyperEM([]float64{1, 2}, 2, 10, 0); err == nil {
		t.Fatal("accepted too few samples")
	}
	if _, err := FitHyperEM([]float64{1, -2, 3, 4}, 1, 10, 0); err == nil {
		t.Fatal("accepted negative sample")
	}
	if _, err := FitHyperEM([]float64{1, 2, 3, 4}, 0, 10, 0); err == nil {
		t.Fatal("accepted zero branches")
	}
}

func TestLogLikelihoodRejectsNonMixture(t *testing.T) {
	if _, err := LogLikelihood(MustErlang(2, 1), []float64{1}); err == nil {
		t.Fatal("accepted an Erlang (has internal transitions)")
	}
}

// One-branch EM is just the exponential MLE: rate = 1/sample-mean.
func TestFitHyperEMOneBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := sampleN(rng, MustExpo(3), 5000)
	var mean float64
	for _, x := range samples {
		mean += x
	}
	mean /= float64(len(samples))
	res, err := FitHyperEM(samples, 1, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist.Rates[0]-1/mean) > 1e-9/mean {
		t.Fatalf("one-branch rate %v, want %v", res.Dist.Rates[0], 1/mean)
	}
}
