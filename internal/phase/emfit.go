package phase

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EMResult reports a completed expectation-maximization fit.
type EMResult struct {
	Dist          *PH
	LogLikelihood float64
	Iterations    int
	Converged     bool
}

// FitHyperEM fits an m-branch hyperexponential to observed service
// times by expectation-maximization. This is the bridge from measured
// workloads (the BELLCORE CPU-time and file-size traces that motivate
// the paper) to the model: H-m is dense in the class of completely
// monotone densities, so with enough branches it approximates any
// heavy-tailed empirical law, and EM finds a local maximum-likelihood
// fit whose log-likelihood increases monotonically.
//
// Branches are initialized from quantile groups of the sorted sample,
// which separates scales well for long-tailed data. tol is the
// relative log-likelihood improvement below which iteration stops.
func FitHyperEM(samples []float64, branches, maxIter int, tol float64) (*EMResult, error) {
	n := len(samples)
	if n < 2*branches {
		return nil, fmt.Errorf("phase: EM needs at least %d samples for %d branches, got %d", 2*branches, branches, n)
	}
	if branches < 1 {
		return nil, errors.New("phase: EM needs at least one branch")
	}
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("phase: EM sample %v out of domain (0, ∞)", x)
		}
	}
	if maxIter < 1 {
		maxIter = 500
	}
	if tol <= 0 {
		tol = 1e-10
	}

	// Quantile-group initialization.
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	probs := make([]float64, branches)
	rates := make([]float64, branches)
	for j := 0; j < branches; j++ {
		lo := j * n / branches
		hi := (j + 1) * n / branches
		group := sorted[lo:hi]
		var mean float64
		for _, x := range group {
			mean += x
		}
		mean /= float64(len(group))
		probs[j] = float64(len(group)) / float64(n)
		rates[j] = 1 / mean
	}

	gamma := make([][]float64, branches) // responsibilities
	for j := range gamma {
		gamma[j] = make([]float64, n)
	}
	prevLL := math.Inf(-1)
	res := &EMResult{}
	for iter := 1; iter <= maxIter; iter++ {
		// E-step with the usual max-subtraction for stability.
		var ll float64
		for i, x := range samples {
			maxLog := math.Inf(-1)
			logs := make([]float64, branches)
			for j := 0; j < branches; j++ {
				logs[j] = math.Log(probs[j]) + math.Log(rates[j]) - rates[j]*x
				if logs[j] > maxLog {
					maxLog = logs[j]
				}
			}
			var denom float64
			for j := 0; j < branches; j++ {
				logs[j] = math.Exp(logs[j] - maxLog)
				denom += logs[j]
			}
			for j := 0; j < branches; j++ {
				gamma[j][i] = logs[j] / denom
			}
			ll += maxLog + math.Log(denom)
		}
		// M-step.
		for j := 0; j < branches; j++ {
			var weight, weighted float64
			for i, x := range samples {
				weight += gamma[j][i]
				weighted += gamma[j][i] * x
			}
			if weight < 1e-300 || weighted <= 0 {
				// Branch starved: re-seed it at the global scale.
				weight = 1e-6 * float64(n)
				weighted = weight * sorted[n/2]
			}
			probs[j] = weight / float64(n)
			rates[j] = weight / weighted
		}
		normalize(probs)
		res.Iterations = iter
		res.LogLikelihood = ll
		if ll-prevLL < tol*math.Abs(ll)+1e-15 && iter > 1 {
			res.Converged = true
			break
		}
		prevLL = ll
	}
	dist, err := Hyper(probs, rates)
	if err != nil {
		return nil, fmt.Errorf("phase: EM produced an invalid fit: %w", err)
	}
	res.Dist = dist
	res.Dist.Name = fmt.Sprintf("H%d-EM", branches)
	return res, nil
}

func normalize(p []float64) {
	var s float64
	for _, v := range p {
		s += v
	}
	for i := range p {
		p[i] /= s
	}
}

// LogLikelihood evaluates the hyperexponential log-likelihood of
// samples under d (d must be a mixture, i.e. have no internal
// transitions); useful for comparing fits.
func LogLikelihood(d *PH, samples []float64) (float64, error) {
	for i := 0; i < d.Dim(); i++ {
		for j := 0; j < d.Dim(); j++ {
			if d.Trans.At(i, j) != 0 {
				return 0, errors.New("phase: LogLikelihood requires a pure mixture (no internal transitions)")
			}
		}
	}
	var ll float64
	for _, x := range samples {
		var density float64
		for j := 0; j < d.Dim(); j++ {
			density += d.Alpha[j] * d.Rates[j] * math.Exp(-d.Rates[j]*x)
		}
		if density <= 0 {
			return 0, fmt.Errorf("phase: zero density at sample %v", x)
		}
		ll += math.Log(density)
	}
	return ll, nil
}
