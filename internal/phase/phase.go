// Package phase implements phase-type (matrix-exponential)
// distributions in the LAQT representation <p, B> used throughout the
// paper: an entry (row) vector p over m exponential phases, a
// completion-rate matrix M = diag(µ), an internal transition
// probability matrix P, and the service-rate matrix B = M(I − P).
//
// The distribution function is F(t) = 1 − p·exp(−tB)·ε, the density
// b(t) = p·exp(−tB)·B·ε, and the moments E(Tⁿ) = n!·Ψ[Vⁿ] with
// V = B⁻¹ (paper §3.2). The package provides the families the paper
// evaluates — exponential, Erlang-m, hyperexponential-m — plus Coxian
// and truncated power-tail (TPT) distributions for the heavy-tail
// workloads that motivate the model, along with moment-based fitting
// and random-variate sampling for the simulator.
package phase

import (
	"fmt"
	"math/rand"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

// PH is a phase-type distribution <p, B>.
//
// Alpha is the entry probability vector over phases (sums to 1).
// Rates holds the completion rate µᵢ of each phase (the diagonal of
// M). Trans is the internal transition probability matrix P: on
// completing phase i the process moves to phase j with probability
// Trans[i][j] and leaves the distribution (service completes) with
// probability 1 − Σⱼ Trans[i][j].
type PH struct {
	Name  string
	Alpha []float64
	Rates []float64
	Trans *matrix.Matrix
}

// Validate checks structural invariants: matching dimensions,
// probability vectors/rows (including NaN/Inf screens), strictly
// positive rates, and service-completion reachability — from every
// phase there must be a positive-probability path out of the
// distribution, otherwise B = M(I−P) is singular and every moment is
// infinite. All failures match check.ErrInvalidModel.
func (d *PH) Validate() error {
	if d == nil {
		return check.Invalid("phase: nil distribution")
	}
	m := len(d.Alpha)
	if m == 0 {
		return check.Invalid("phase: empty distribution")
	}
	if d.Trans == nil {
		return check.Invalid("phase: nil transition matrix")
	}
	if len(d.Rates) != m {
		return check.Invalid("phase: %d rates for %d phases", len(d.Rates), m)
	}
	if d.Trans.Rows() != m || d.Trans.Cols() != m {
		return check.Invalid("phase: transition matrix %dx%d for %d phases", d.Trans.Rows(), d.Trans.Cols(), m)
	}
	if err := check.ProbVec("phase: entry probabilities", d.Alpha); err != nil {
		return err
	}
	if err := check.PositiveVec("phase: rate", d.Rates); err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		if err := check.SubStochasticRow(fmt.Sprintf("phase: P row %d", i), d.Trans.RawRow(i)); err != nil {
			return err
		}
	}
	// Completion reachability: reverse BFS from the phases with a
	// strictly positive exit probability along positive-probability
	// transitions. A phase outside the reached set can never complete
	// service — an absorbing internal phase, which would make B
	// singular and hang the sampler.
	reach := make([]bool, m)
	queue := make([]int, 0, m)
	for i := 0; i < m; i++ {
		if d.ExitProb(i) > check.ProbTol {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for i := 0; i < m; i++ {
			if !reach[i] && d.Trans.At(i, j) > 0 {
				reach[i] = true
				queue = append(queue, i)
			}
		}
	}
	for i, ok := range reach {
		if !ok {
			return check.Invalid("phase: phase %d cannot reach service completion (absorbing internal phase)", i)
		}
	}
	return nil
}

// Dim returns the number of phases m.
func (d *PH) Dim() int { return len(d.Alpha) }

// ExitProb returns the service-completion probability out of phase i,
// 1 − Σⱼ P[i][j], clamped at zero against round-off.
func (d *PH) ExitProb(i int) float64 {
	row := d.Trans.RawRow(i)
	p := 1.0
	for _, v := range row {
		p -= v
	}
	if p < 0 {
		return 0
	}
	return p
}

// B returns the service-rate matrix B = M(I − P).
func (d *PH) B() *matrix.Matrix {
	m := d.Dim()
	b := matrix.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := -d.Rates[i] * d.Trans.At(i, j)
			if i == j {
				v += d.Rates[i]
			}
			b.Set(i, j, v)
		}
	}
	return b
}

// V returns the service-time matrix V = B⁻¹.
func (d *PH) V() *matrix.Matrix {
	inv, err := matrix.Inverse(d.B())
	if err != nil {
		panic("phase: B is singular — distribution has an absorbing internal phase")
	}
	return inv
}

// Moment returns the n-th raw moment E(Tⁿ) = n!·p·Vⁿ·ε, computed with
// n linear solves rather than matrix inversion.
func (d *PH) Moment(n int) float64 {
	if n < 0 {
		panic("phase: negative moment order")
	}
	if n == 0 {
		return 1
	}
	f, err := matrix.Factor(d.B())
	if err != nil {
		panic("phase: B is singular")
	}
	x := matrix.Ones(d.Dim())
	fact := 1.0
	for i := 1; i <= n; i++ {
		x = f.Solve(x)
		fact *= float64(i)
	}
	return fact * matrix.Dot(d.Alpha, x)
}

// Mean returns E(T).
func (d *PH) Mean() float64 { return d.Moment(1) }

// Variance returns Var(T).
func (d *PH) Variance() float64 {
	m1 := d.Moment(1)
	return d.Moment(2) - m1*m1
}

// CV2 returns the squared coefficient of variation C² = Var/E².
func (d *PH) CV2() float64 {
	m1 := d.Moment(1)
	return d.Variance() / (m1 * m1)
}

// CDF returns F(t) = 1 − p·exp(−tB)·ε. For t ≤ 0 it returns 0.
func (d *PH) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	e := matrix.Expm(d.B().Scale(-t))
	return 1 - matrix.Dot(d.Alpha, e.MulVec(matrix.Ones(d.Dim())))
}

// PDF returns the density b(t) = p·exp(−tB)·B·ε.
func (d *PH) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	b := d.B()
	e := matrix.Expm(b.Scale(-t))
	return matrix.Dot(d.Alpha, e.MulVec(b.MulVec(matrix.Ones(d.Dim()))))
}

// Reliability returns R(t) = Pr(T > t) = p·exp(−tB)·ε.
func (d *PH) Reliability(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return 1 - d.CDF(t)
}

// PDF0 returns the density at the origin, b(0) = p·B·ε — the quantity
// the paper suggests as a third fitting parameter for H2 (§5.4.2).
func (d *PH) PDF0() float64 {
	return matrix.Dot(d.Alpha, d.B().MulVec(matrix.Ones(d.Dim())))
}

// Sample draws one service time: start in a phase chosen by Alpha,
// hold an exponential time in each visited phase, move by Trans, and
// stop on service completion.
func (d *PH) Sample(rng *rand.Rand) float64 {
	ph := samplePMF(rng, d.Alpha)
	var t float64
	for {
		t += rng.ExpFloat64() / d.Rates[ph]
		u := rng.Float64()
		row := d.Trans.RawRow(ph)
		next := -1
		var cum float64
		for j, p := range row {
			cum += p
			if u < cum {
				next = j
				break
			}
		}
		if next < 0 {
			return t // completion
		}
		ph = next
	}
}

// samplePMF draws an index from a probability vector.
func samplePMF(rng *rand.Rand, pmf []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range pmf {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(pmf) - 1 // round-off guard
}

// ScaleMean returns a copy of d rescaled so that its mean equals
// target; C² and the distribution shape are unchanged.
func (d *PH) ScaleMean(target float64) *PH {
	if target <= 0 {
		panic("phase: ScaleMean target must be positive")
	}
	ratio := d.Mean() / target
	rates := make([]float64, len(d.Rates))
	for i, r := range d.Rates {
		rates[i] = r * ratio
	}
	return &PH{
		Name:  d.Name,
		Alpha: append([]float64(nil), d.Alpha...),
		Rates: rates,
		Trans: d.Trans.Clone(),
	}
}

// String describes the distribution family, mean and C².
func (d *PH) String() string {
	return fmt.Sprintf("%s(m=%d, mean=%.4g, C2=%.4g)", d.Name, d.Dim(), d.Mean(), d.CV2())
}
