package phase

// Must panics if err is non-nil and otherwise returns d. It turns the
// error-returning constructors back into expression-friendly builders
// for examples, tests and hard-coded models whose parameters are known
// to be valid at compile time.
func Must(d *PH, err error) *PH {
	if err != nil {
		panic(err)
	}
	return d
}

// MustExpo is Expo for statically known-good parameters; it panics on
// invalid input instead of returning an error.
func MustExpo(mu float64) *PH { return Must(Expo(mu)) }

// MustExpoMean is ExpoMean for statically known-good parameters.
func MustExpoMean(mean float64) *PH { return Must(ExpoMean(mean)) }

// MustErlang is Erlang for statically known-good parameters.
func MustErlang(m int, mu float64) *PH { return Must(Erlang(m, mu)) }

// MustErlangMean is ErlangMean for statically known-good parameters.
func MustErlangMean(m int, mean float64) *PH { return Must(ErlangMean(m, mean)) }

// MustHyper is Hyper for statically known-good parameters.
func MustHyper(probs, rates []float64) *PH { return Must(Hyper(probs, rates)) }

// MustHyperExpFit is HyperExpFit for statically known-good parameters.
func MustHyperExpFit(mean, cv2 float64) *PH { return Must(HyperExpFit(mean, cv2)) }

// MustCoxian2 is Coxian2 for statically known-good parameters.
func MustCoxian2(mean, cv2 float64) *PH { return Must(Coxian2(mean, cv2)) }

// MustFitCV2 is FitCV2 for statically known-good parameters.
func MustFitCV2(mean, cv2 float64) *PH { return Must(FitCV2(mean, cv2)) }

// MustTPT is TPT for statically known-good parameters.
func MustTPT(m int, alpha, mean float64) *PH { return Must(TPT(m, alpha, mean)) }

// MustWithBreakdowns is WithBreakdowns for statically known-good
// parameters.
func MustWithBreakdowns(d *PH, fail, repair float64) *PH {
	return Must(WithBreakdowns(d, fail, repair))
}
