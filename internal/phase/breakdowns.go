package phase

import (
	"fmt"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

// WithBreakdowns returns the completion-time distribution of service
// by d on a server that fails at rate `fail` (exponentially, while
// serving) and repairs at rate `repair`, with preemptive-resume
// semantics: work done before a failure is kept, service continues
// where it stopped once the server is back.
//
// The construction is exact and stays phase-type — the conclusion of
// the paper lists fault tolerance among the model's applications, and
// this is the standard way to fold server availability into the
// service law: each phase i splits into an up state (rate µᵢ+f,
// failing with probability f/(µᵢ+f)) and a down state (rate r,
// returning to up). The mean inflates by exactly (1 + f/r).
func WithBreakdowns(d *PH, fail, repair float64) (*PH, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("phase: WithBreakdowns: %w", err)
	}
	if err := check.Positive("repair rate", repair); err != nil {
		return nil, fmt.Errorf("phase: WithBreakdowns: %w", err)
	}
	if err := check.Finite("fail rate", fail); err != nil {
		return nil, fmt.Errorf("phase: WithBreakdowns: %w", err)
	}
	if fail < 0 {
		return nil, fmt.Errorf("phase: WithBreakdowns: %w", check.Invalid("fail rate is %v, want >= 0", fail))
	}
	if fail == 0 {
		return d.ScaleMean(d.Mean()), nil // clean copy
	}
	m := d.Dim()
	alpha := make([]float64, 2*m)
	rates := make([]float64, 2*m)
	trans := matrix.New(2*m, 2*m)
	for i := 0; i < m; i++ {
		up, down := i, m+i
		alpha[up] = d.Alpha[i]
		rates[up] = d.Rates[i] + fail
		rates[down] = repair
		pFail := fail / (d.Rates[i] + fail)
		pWork := 1 - pFail
		trans.Set(up, down, pFail)
		for j := 0; j < m; j++ {
			if v := d.Trans.At(i, j); v != 0 {
				trans.Set(up, j, pWork*v)
			}
		}
		// Completion probability scales by pWork implicitly: the
		// remaining mass of the up row exits the distribution.
		trans.Set(down, up, 1)
	}
	return &PH{
		Name:  fmt.Sprintf("%s+brk(f=%.3g,r=%.3g)", d.Name, fail, repair),
		Alpha: alpha,
		Rates: rates,
		Trans: trans,
	}, nil
}
