module finwl

go 1.22
