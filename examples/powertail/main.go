// Power-tail workloads: the measurements that motivate the paper
// (CPU times at BELLCORE, file sizes on disks) are power-tailed, and
// exponential models underestimate them badly. This example models
// the shared storage server with a truncated power-tail (TPT)
// distribution, compares it against exponential and H2 fits of the
// same mean, and shows what each assumption predicts for the job.
package main

import (
	"fmt"
	"log"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/phase"
	"finwl/internal/workload"
)

func main() {
	app := workload.Default(30)
	const k = 5

	tpt := func(mean float64) (*phase.PH, error) { return phase.TPT(12, 1.4, mean) }
	probe, err := phase.TPT(12, 1.4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPT service law: %d exponential branches, tail index α=1.4, C²=%.1f\n\n", probe.Dim(), probe.CV2())

	type row struct {
		label string
		dist  cluster.Dist
	}
	rows := []row{
		{"exponential", cluster.Exponential},
		{fmt.Sprintf("H2 fit (C²=%.1f)", probe.CV2()), cluster.WithCV2(probe.CV2())},
		{"truncated power tail", tpt},
	}
	fmt.Printf("%-24s %10s %10s %12s\n", "storage service law", "E(T) job", "t_ss", "last epoch")
	var baseline float64
	for i, r := range rows {
		net, err := cluster.Central(k, app, cluster.Dists{Remote: r.dist}, cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Solve(app.N)
		if err != nil {
			log.Fatal(err)
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10.2f %10.4f %12.4f\n", r.label, res.TotalTime, tss, res.Epochs[app.N-1])
		if i == 0 {
			baseline = res.TotalTime
		} else if i == len(rows)-1 {
			fmt.Printf("\nexponential model underestimates the power-tail job by %.1f%%\n",
				100*(res.TotalTime-baseline)/res.TotalTime)
		}
	}
	fmt.Println("\nBoth high-variance laws push the job well past the exponential")
	fmt.Println("prediction — and they disagree with each other despite sharing the")
	fmt.Println("same mean and C²: the higher moments of the tail matter too, which")
	fmt.Println("is why the model accepts arbitrary matrix-exponential laws instead")
	fmt.Println("of a single variance knob.")
}
