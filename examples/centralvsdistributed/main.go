// Central vs distributed storage: the data-allocation question the
// paper's companion work ([14,15]) motivates. For the same
// application, compare the job completion time when shared data sits
// on one central server against spreading it uniformly over the
// workstation disks, across cluster sizes and workload sizes.
package main

import (
	"fmt"
	"log"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/workload"
)

func totalTime(arch string, k, n int) float64 {
	app := workload.Default(n)
	var (
		s   *core.Solver
		err error
	)
	switch arch {
	case "central":
		net, e := cluster.Central(k, app, cluster.Dists{}, cluster.Options{})
		if e != nil {
			log.Fatal(e)
		}
		s, err = core.NewSolver(net, k)
	case "distributed":
		net, e := cluster.Distributed(k, app, cluster.Dists{})
		if e != nil {
			log.Fatal(e)
		}
		s, err = core.NewSolver(net, k)
	}
	if err != nil {
		log.Fatal(err)
	}
	t, err := s.TotalTime(n)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func main() {
	const n = 40
	app := workload.Default(n)
	fmt.Printf("Job: N=%d tasks, E(T)=%.1f per task (Y=%.2f remote)\n\n", n, app.SingleTaskTime(), app.Y)
	fmt.Printf("%4s %14s %14s %12s\n", "K", "central E(T)", "distrib E(T)", "advantage")
	for _, k := range []int{1, 2, 3, 4, 5} {
		c := totalTime("central", k, n)
		d := totalTime("distributed", k, n)
		adv := "central"
		if d < c {
			adv = "distributed"
		}
		fmt.Printf("%4d %14.2f %14.2f %12s\n", k, c, d, adv)
	}
	fmt.Println("\nThe central server becomes the bottleneck as K grows; spreading")
	fmt.Println("the shared data across the workstation disks divides that load at")
	fmt.Println("the cost of routing every disk access over the interconnect.")
}
