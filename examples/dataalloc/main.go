// Data allocation: where should shared data live when the disks are
// not identical? Uses the transient model as the objective and
// optimizes the split of shared data across a heterogeneous
// distributed cluster — the use case of the paper's companion work on
// efficient data allocation. The model-driven optimum differs
// markedly from the speed-proportional heuristic: at these loads,
// queueing briefly at the fast disk is cheaper than paying the slow
// disk's service time at all, so the optimizer concentrates data far
// more aggressively than proportional placement would.
package main

import (
	"fmt"
	"log"

	"finwl/internal/alloc"
	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/workload"
)

func evalAlloc(k int, app workload.App, fractions, speeds []float64) float64 {
	net, err := alloc.DistributedAlloc(k, app, cluster.Dists{}, fractions, speeds)
	if err != nil {
		log.Fatal(err)
	}
	s, err := core.NewSolver(net, k)
	if err != nil {
		log.Fatal(err)
	}
	total, err := s.TotalTime(app.N)
	if err != nil {
		log.Fatal(err)
	}
	return total
}

func main() {
	const k = 3
	app := workload.Default(24)
	// One fast disk (2× nominal), one nominal, one slow (0.6×).
	speeds := []float64{2.0, 1.0, 0.6}

	fmt.Printf("Distributed cluster, K=%d, N=%d tasks, disk speeds %v\n\n", k, app.N, speeds)

	uniform := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	tU := evalAlloc(k, app, uniform, speeds)
	fmt.Printf("uniform allocation        %v → E(T) = %.2f\n", fmtFracs(uniform), tU)

	// Speed-proportional: the obvious heuristic.
	total := speeds[0] + speeds[1] + speeds[2]
	prop := []float64{speeds[0] / total, speeds[1] / total, speeds[2] / total}
	tP := evalAlloc(k, app, prop, speeds)
	fmt.Printf("speed-proportional        %v → E(T) = %.2f\n", fmtFracs(prop), tP)

	res, err := alloc.Optimize(k, app, cluster.Dists{}, speeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model-optimized           %v → E(T) = %.2f  (%d evaluations)\n\n",
		fmtFracs(res.Fractions), res.TotalTime, res.Evals)

	fmt.Printf("optimized vs uniform:            %.1f%% faster\n", 100*(tU-res.TotalTime)/tU)
	fmt.Printf("optimized vs speed-proportional: %.1f%% faster\n", 100*(tP-res.TotalTime)/tP)
}

func fmtFracs(f []float64) string {
	out := "["
	for i, v := range f {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", v)
	}
	return out + "]"
}
