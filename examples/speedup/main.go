// Capacity planning: how many workstations does this job actually
// benefit from? Sweeps the cluster size and compares three answers —
// the exact transient model, the classical product-form steady-state
// estimate (which ignores the transient and draining regions), and
// the order-statistics fork/join prediction (which ignores resource
// sharing entirely: each task occupies its machine for its full
// service time, so no CPU/I-O overlap between tasks). It then
// recommends the size where the marginal speedup drops below 10% per
// added workstation.
package main

import (
	"fmt"
	"log"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/orderstat"
	"finwl/internal/productform"
	"finwl/internal/workload"
)

func main() {
	const n = 60
	app := workload.LowContention(n)
	dists := cluster.Dists{CPU: cluster.WithCV2(4)} // bursty CPU demands

	fmt.Printf("Job: N=%d tasks, E(T)=%.1f, CPU C²=4\n\n", n, app.SingleTaskTime())
	fmt.Printf("%3s %12s %12s %12s %12s\n", "K", "exact SP", "PF-est SP", "forkjoin SP", "marginal")

	serial := app.SerialTime()
	prev := 0.0
	recommended := 0
	for k := 1; k <= 10; k++ {
		net, err := cluster.Central(k, app, dists, cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			log.Fatal(err)
		}
		total, err := s.TotalTime(n)
		if err != nil {
			log.Fatal(err)
		}
		exact := serial / total

		// The product-form estimate ignores both transients and the
		// CPU burstiness: every task is costed at the steady rate.
		pfModel, err := productform.FromNetwork(net)
		if err != nil {
			log.Fatal(err)
		}
		pfTime := float64(n) * pfModel.Interdeparture(k)
		pfSP := serial / pfTime

		// Fork/join order-statistics prediction: tasks run as
		// independent batches, one at a time per machine.
		forkjoin := serial / orderstat.IndependentMakespan(net.AsPH(), n, k)

		marginal := exact - prev
		fmt.Printf("%3d %12.2f %12.2f %12.2f %12.2f\n", k, exact, pfSP, forkjoin, marginal)
		if recommended == 0 && k > 1 && marginal < 0.1*exact {
			recommended = k - 1
		}
		prev = exact
	}
	if recommended == 0 {
		recommended = 10
	}
	fmt.Printf("\nRecommended cluster size: %d workstations\n", recommended)
	fmt.Println("(marginal speedup below 10% of the total beyond that point)")
}
