// Validate the analytic transient model against the discrete-event
// simulator — the paper's own validation methodology. Every epoch of
// the analytic inter-departure series is compared with the simulated
// mean over thousands of replications.
package main

import (
	"fmt"
	"log"
	"math"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/sim"
	"finwl/internal/workload"
)

func main() {
	app := workload.Default(20)
	const (
		k    = 4
		reps = 5000
	)
	net, err := cluster.Central(k, app, cluster.Dists{
		Remote: cluster.WithCV2(10),
		CPU:    cluster.ErlangStages(2),
	}, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}

	solver, err := core.NewSolver(net, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(app.N)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sim.Replicate(sim.Config{Net: net, K: k, N: app.N, Seed: 1}, reps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Central cluster, K=%d, N=%d, Erlang-2 CPUs, H2(C²=10) storage\n", k, app.N)
	fmt.Printf("%d simulation replications\n\n", reps)
	fmt.Printf("%6s %12s %12s %9s\n", "epoch", "analytic", "simulated", "diff %")
	worst := 0.0
	for i := range res.Epochs {
		a, s := res.Epochs[i], rep.MeanEpochs[i]
		d := 100 * math.Abs(a-s) / a
		worst = math.Max(worst, d)
		fmt.Printf("%6d %12.4f %12.4f %8.2f%%\n", i+1, a, s, d)
	}
	fmt.Printf("\ntotal E(T): analytic %.3f, simulated %.3f ± %.3f (95%% CI)\n",
		res.TotalTime, rep.MeanTotal, rep.TotalCI95)
	fmt.Printf("worst per-epoch deviation: %.2f%%\n", worst)
	if math.Abs(res.TotalTime-rep.MeanTotal) <= 3*rep.TotalCI95 {
		fmt.Println("VALIDATED: analytic total inside the 3-sigma band")
	} else {
		fmt.Println("MISMATCH: analytic total outside the simulation CI")
	}
}
