// Heterogeneous workloads: a job mixing light interactive tasks with
// heavy batch tasks on the same cluster. The multiclass transient
// model answers the scheduling question the single-class model
// cannot: in which order should the scheduler admit the classes?
// Starting the heavy tasks first (LPT-style) trims the draining tail;
// the model quantifies by how much, and a multiclass simulation
// confirms it.
package main

import (
	"fmt"
	"log"

	"finwl/internal/matrix"
	"finwl/internal/multiclass"
	"finwl/internal/statespace"
)

func main() {
	const (
		q        = 0.2
		nLight   = 8
		nHeavy   = 4
		k        = 3
		slowdown = 4.0
	)
	// Three stations: CPU pool (delay), shared comm and disk (queues).
	// Class 0 = interactive, class 1 = batch (4× heavier everywhere).
	baseRates := []float64{2, 4, 1.2}
	routes := make([]*matrix.Matrix, 2)
	exits := make([][]float64, 2)
	entries := make([][]float64, 2)
	for c := 0; c < 2; c++ {
		r := matrix.New(3, 3)
		r.Set(0, 1, (1-q)/2)
		r.Set(0, 2, (1-q)/2)
		r.Set(1, 0, 1)
		r.Set(2, 0, 1)
		routes[c] = r
		exits[c] = []float64{q, 0, 0}
		entries[c] = []float64{1, 0, 0}
	}
	rates := make([][]float64, 3)
	for st, base := range baseRates {
		rates[st] = []float64{base, base / slowdown}
	}
	mk := func(swap bool) *multiclass.Config {
		cfg := &multiclass.Config{
			Stations: []multiclass.Station{
				{Name: "CPU", Kind: statespace.Delay},
				{Name: "Comm", Kind: statespace.Queue},
				{Name: "Disk", Kind: statespace.Queue},
			},
			Classes: 2,
			Rates:   rates,
			Route:   routes,
			Exit:    exits,
			Entry:   entries,
		}
		if swap {
			sw := make([][]float64, 3)
			for st := range rates {
				sw[st] = []float64{rates[st][1], rates[st][0]}
			}
			cfg.Rates = sw
		}
		return cfg
	}

	fmt.Printf("Workload: %d interactive + %d batch tasks (batch %.0fx heavier), K=%d\n\n",
		nLight, nHeavy, slowdown, k)

	type policy struct {
		label  string
		swap   bool
		counts []int
		pol    multiclass.Policy
	}
	policies := []policy{
		{"random admission", false, []int{nLight, nHeavy}, multiclass.Proportional},
		{"interactive first", false, []int{nLight, nHeavy}, multiclass.PriorityOrder},
		{"batch first", true, []int{nHeavy, nLight}, multiclass.PriorityOrder},
	}
	for _, p := range policies {
		cfg := mk(p.swap)
		solver, err := multiclass.NewSolver(cfg)
		if err != nil {
			log.Fatal(err)
		}
		w := multiclass.Workload{Counts: p.counts, K: k, Policy: p.pol}
		res, err := solver.Solve(w)
		if err != nil {
			log.Fatal(err)
		}
		mean, ci, err := multiclass.Replicate(cfg, w, 5, 4000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s analytic E(T) = %7.2f   sim %7.2f ± %.2f\n", p.label, res.TotalTime, mean, ci)
	}
	fmt.Println("\nAdmitting the batch class first overlaps its long service with the")
	fmt.Println("stream of short tasks instead of leaving it to dominate the drain.")
}
