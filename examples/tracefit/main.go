// Trace-driven modeling: the full pipeline the paper's motivation
// implies. Measured CPU/file-size traces are power-tailed (BELLCORE);
// here we (1) generate a genuinely Pareto service trace for the
// shared storage, (2) fit hyperexponential laws to it by EM,
// (3) predict the job — mean AND completion-time percentiles — under
// the exponential assumption and under the fitted law, and (4) check
// both against a trace-driven simulation that samples the true Pareto
// law the analytic model cannot represent exactly.
//
// The punchline matches the power-tail literature: the *mean* E(T) is
// nearly insensitive to the tail at these loads, but the p99 makespan
// is not — and only the fitted high-variance model sees that.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"finwl/internal/cluster"
	"finwl/internal/ctmc"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/sim"
	"finwl/internal/trace"
	"finwl/internal/workload"
)

func main() {
	const (
		k       = 4
		n       = 30
		alpha   = 1.6 // tail index: finite mean, infinite variance — the PT regime
		reps    = 6000
		samples = 50000
	)
	app := workload.Default(n)
	rng := rand.New(rand.NewSource(17))

	// 1. "Measure" the storage service trace.
	params, err := cluster.DeriveCentral(app)
	if err != nil {
		log.Fatal(err)
	}
	xmin := params.TRD * (alpha - 1) / alpha // Pareto with the calibrated mean
	tr := trace.Pareto(rng, alpha, xmin, samples)
	sum, err := trace.Summarize(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage service trace: n=%d mean=%.4f C²=%.2f p99=%.3f max=%.2f\n",
		sum.N, sum.Mean, sum.CV2, sum.P99, sum.Max)

	// 2. EM-fit a hyperexponential law to the trace.
	fit, err := phase.FitHyperEM(tr, 3, 800, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM H3 fit: mean=%.4f C²=%.2f (%d iters, converged=%v)\n\n",
		fit.Dist.Mean(), fit.Dist.CV2(), fit.Iterations, fit.Converged)

	// 3. Ground truth: trace-driven simulation with true Pareto
	// service at the storage station (index 3 = RDisk).
	netBase, err := cluster.Central(k, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	samplers := make([]func(*rand.Rand) float64, len(netBase.Stations))
	samplers[3] = func(r *rand.Rand) float64 {
		return xmin / math.Pow(r.Float64(), 1/alpha)
	}
	rep, err := sim.Replicate(sim.Config{Net: netBase, K: k, N: n, Seed: 23, Samplers: samplers}, reps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-20s %10s %10s %10s\n", "model", "mean E(T)", "p90", "p99")
	fmt.Printf("%-20s %10.2f %10.2f %10.2f   (trace-driven simulation)\n",
		"true Pareto", rep.MeanTotal, rep.TotalQuantile(0.9), rep.TotalQuantile(0.99))

	// 4. Analytic predictions: mean from the transient solver,
	// percentiles from the absorbing-chain distribution.
	predict := func(label string, d cluster.Dist) {
		net, err := cluster.Central(k, app, cluster.Dists{Remote: d}, cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		chain, err := network.NewChain(net, k)
		if err != nil {
			log.Fatal(err)
		}
		c, err := ctmc.Build(chain, n)
		if err != nil {
			log.Fatal(err)
		}
		mean, err := c.MeanAbsorptionTime()
		if err != nil {
			log.Fatal(err)
		}
		p90, err := c.Quantile(0.9)
		if err != nil {
			log.Fatal(err)
		}
		p99, err := c.Quantile(0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.2f %10.2f %10.2f\n", label, mean, p90, p99)
	}
	predict("exponential", cluster.Exponential)
	predict("H3 EM fit", func(mean float64) (*phase.PH, error) { return fit.Dist.ScaleMean(mean), nil })

	fmt.Println("\nMeans barely move — but the trace-driven p99 sits far above the")
	fmt.Println("exponential model's, and the EM-fitted law closes most of that gap.")
}
