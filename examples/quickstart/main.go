// Quickstart: model a parallel job of 30 tasks on a 5-workstation
// central-storage cluster and walk through everything the library
// computes for it — the single-task calibration, the full transient
// solution with its three regions, the steady state, and the
// product-form comparison.
package main

import (
	"fmt"
	"log"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/productform"
	"finwl/internal/workload"
)

func main() {
	// A job of 30 iid tasks: 8.7 time units of local work (half CPU,
	// half local disk), 2.75 units of remote storage access plus 20%
	// communication overhead — 12 units of service per task in total.
	app := workload.Default(30)
	const k = 5

	// Build the 4-station central-cluster network: CPU pool, local
	// disk pool, shared communication channel, shared storage server.
	// The shared storage is hyperexponential with C² = 10 — measured
	// CPU and file-size distributions are high-variance, and that is
	// exactly what product-form models cannot represent.
	net, err := cluster.Central(k, app, cluster.Dists{
		Remote: cluster.WithCV2(10),
	}, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Single-task calibration (paper §5.4):")
	names := []string{"CPU", "Disk", "Comm", "RDisk"}
	tc, err := net.TimeComponents()
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range tc {
		fmt.Printf("  time at %-6s %6.3f\n", names[i], v)
	}
	fmt.Printf("  total E(T) one task, no contention: %.3f\n\n", net.AsPH().Mean())

	// The transient solver factors the level matrices once and then
	// walks the N departure epochs.
	solver, err := core.NewSolver(net, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(app.N)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Departure epochs (inter-departure times):")
	for i, e := range res.Epochs {
		region := "steady "
		switch {
		case i < k:
			region = "fill   "
		case i >= app.N-k:
			region = "drain  "
		}
		fmt.Printf("  task %2d  %s %8.4f\n", i+1, region, e)
	}
	fmt.Printf("\nE(T) for all %d tasks: %.3f\n", app.N, res.TotalTime)
	fmt.Printf("Speedup vs one workstation: %.2f\n\n", app.SerialTime()/res.TotalTime)

	// Steady state of the feeding operator vs the product-form
	// solution: with an H2 shared server they differ — Jackson
	// networks no longer apply, the transient model still does.
	_, tss, err := solver.SteadyState()
	if err != nil {
		log.Fatal(err)
	}
	pfModel, err := productform.FromNetwork(net)
	if err != nil {
		log.Fatal(err)
	}
	pf := pfModel.Interdeparture(k)
	fmt.Printf("steady-state inter-departure time: %.4f\n", tss)
	fmt.Printf("product-form (exponential) value:  %.4f\n", pf)
	fmt.Printf("what assuming product form would miss: %.1f%%\n", 100*(tss-pf)/tss)
}
