// Root performance harness: the BenchmarkPerf* benchmarks track the
// solver's three hot paths — chain construction + factorization,
// the allocation-free epoch kernels, and incremental N-sweeps — so
// every PR leaves a comparable perf trajectory. scripts/bench.sh runs
// them and snapshots the results into BENCH_<n>.json.
package finwl_test

import (
	"runtime"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/workload"
)

func perfNet(b *testing.B, k int) *core.Solver {
	b.Helper()
	app := workload.Default(30)
	net, err := cluster.Central(k, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSolver(net, k)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// Chain construction + per-level LU factorization, parallel (default
// GOMAXPROCS) versus serial (GOMAXPROCS=1). On a multi-core host the
// parallel variant shows the worker-pool speedup; on one core the two
// coincide.
func benchPerfConstruct(b *testing.B, procs int) {
	if procs > 0 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
	}
	app := workload.Default(30)
	net, err := cluster.Central(8, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSolver(net, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfNewSolverK8H2(b *testing.B)       { benchPerfConstruct(b, 0) }
func BenchmarkPerfNewSolverK8H2Serial(b *testing.B) { benchPerfConstruct(b, 1) }

// One transient pass at N=400 on the K=8 H2 chain: the epoch loop
// must stay O(1) in allocations however large N grows.
func BenchmarkPerfSolveN400K8(b *testing.B) {
	s := perfNet(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(400); err != nil {
			b.Fatal(err)
		}
	}
}

func perfSweepNs() []int {
	ns := make([]int, 100)
	for i := range ns {
		ns[i] = 8 + 4*i
	}
	return ns
}

// A 100-point N-sweep via the incremental SolveSweep pass …
func BenchmarkPerfSolveSweep100(b *testing.B) {
	s := perfNet(b, 8)
	ns := perfSweepNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveSweep(ns); err != nil {
			b.Fatal(err)
		}
	}
}

// … against the same sweep as 100 independent Solve calls.
func BenchmarkPerfRepeatedSolve100(b *testing.B) {
	s := perfNet(b, 8)
	ns := perfSweepNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range ns {
			if _, err := s.Solve(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Steady state of the K=8 H2 chain (direct solve at this size).
func BenchmarkPerfSteadyStateK8(b *testing.B) {
	s := perfNet(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}
