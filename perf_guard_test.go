// Perf guard: bench-backed regression tests that run with the normal
// suite (skipped under -short). Where perf_bench_test.go only records
// numbers, these tests enforce the two contracts the structured sparse
// build makes: the parallel construction path never loses to serial
// beyond noise, and construction allocation stays within budget.
package finwl_test

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/workload"
)

// newSolverAllocBudget is the construction allocation ceiling for the
// K=8 H2 benchmark model, overridable via NEWSOLVER_ALLOC_BUDGET (the
// same knob scripts/bench_diff.sh gates on).
func newSolverAllocBudget(t *testing.T) int64 {
	budget := int64(1500)
	if v := os.Getenv("NEWSOLVER_ALLOC_BUDGET"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("NEWSOLVER_ALLOC_BUDGET=%q: want a positive integer", v)
		}
		budget = n
	}
	return budget
}

// TestPerfParallelConstructionGuard holds the re-tuned parallel
// cutover to its contract at K ≥ 8: building a solver with the default
// GOMAXPROCS must never be slower than the forced-serial build beyond
// measurement noise. On a single-core host the cost model keeps both
// paths serial and they coincide; on multi-core hosts a cutover
// regression that drags the parallel path below serial trips the
// guard. The same measurement enforces the construction allocation
// budget, so an alloc regression fails a plain `go test` run, not just
// the bench-diff gate.
func TestPerfParallelConstructionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	app := workload.Default(30)
	net, err := cluster.Central(8, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	build := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSolver(net, 8); err != nil {
				b.Fatal(err)
			}
		}
	}
	parRes := testing.Benchmark(build)
	old := runtime.GOMAXPROCS(1)
	serRes := testing.Benchmark(build)
	runtime.GOMAXPROCS(old)

	// 1.6x absorbs scheduler jitter and benchmark variance on loaded
	// CI hosts; a real cutover regression (parallel overhead paid where
	// it cannot win) shows up well past 2x on small levels.
	const noise = 1.6
	p, s := float64(parRes.NsPerOp()), float64(serRes.NsPerOp())
	t.Logf("NewSolver K=8: parallel %.3f ms/op, serial %.3f ms/op, %d allocs/op",
		p/1e6, s/1e6, parRes.AllocsPerOp())
	if p > s*noise {
		t.Fatalf("parallel NewSolver %.3f ms/op lost to serial %.3f ms/op beyond the %.1fx noise allowance",
			p/1e6, s/1e6, noise)
	}
	if budget := newSolverAllocBudget(t); parRes.AllocsPerOp() > budget {
		t.Fatalf("NewSolver allocates %d objects/op, budget %d", parRes.AllocsPerOp(), budget)
	}
}
