// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the full experiment and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness: the values these benchmarks
// report are the ones recorded in EXPERIMENTS.md. Heavy experiments
// take seconds per iteration; the testing package then runs them a
// single time.
package finwl_test

import (
	"testing"

	"finwl/internal/experiments"
)

// run executes an experiment once per benchmark iteration and reports
// headline metrics extracted from the table by pick.
func run(b *testing.B, id string, pick func(*experiments.Table) map[string]float64) {
	b.Helper()
	runner, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := runner()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if pick != nil {
		for name, v := range pick(last) {
			b.ReportMetric(v, name)
		}
	}
}

// lastEpochRatio reports how much the final (draining) epoch of the
// last series exceeds the plateau of the first series.
func lastEpochRatio(t *experiments.Table) map[string]float64 {
	exp := t.Series[0].Y
	worst := t.Series[len(t.Series)-1].Y
	mid := exp[len(exp)/2]
	return map[string]float64{
		"plateau_exp":   mid,
		"plateau_worst": worst[len(worst)/2],
		"drain_last":    worst[len(worst)-1],
	}
}

func BenchmarkFig03(b *testing.B) { run(b, "fig3", lastEpochRatio) }
func BenchmarkFig04(b *testing.B) { run(b, "fig4", lastEpochRatio) }

func BenchmarkFig05(b *testing.B) {
	run(b, "fig5", func(t *experiments.Table) map[string]float64 {
		c := t.Series[0].Y
		return map[string]float64{
			"tss_cv1":   c[0],
			"tss_cv100": c[len(c)-1],
			"tss_flat":  t.Series[1].Y[0],
		}
	})
}

// errAt picks the prediction error at the lowest and highest C² of
// the last (largest N) series.
func errAt(t *experiments.Table) map[string]float64 {
	s := t.Series[len(t.Series)-1].Y
	return map[string]float64{
		"errpct_cv10": s[2], // C² = 10 in the sweep grids
		"errpct_max":  s[len(s)-1],
	}
}

func BenchmarkFig06(b *testing.B) { run(b, "fig6", errAt) }
func BenchmarkFig07(b *testing.B) { run(b, "fig7", errAt) }

// speedupEnds reports first/last speedups of every series boundary.
func speedupEnds(t *experiments.Table) map[string]float64 {
	first := t.Series[0].Y
	last := t.Series[len(t.Series)-1].Y
	return map[string]float64{
		"sp_first_lo": first[0],
		"sp_first_hi": first[len(first)-1],
		"sp_last_lo":  last[0],
		"sp_last_hi":  last[len(last)-1],
	}
}

func BenchmarkFig08(b *testing.B) { run(b, "fig8", speedupEnds) }
func BenchmarkFig09(b *testing.B) { run(b, "fig9", speedupEnds) }
func BenchmarkFig10(b *testing.B) { run(b, "fig10", lastEpochRatio) }
func BenchmarkFig11(b *testing.B) { run(b, "fig11", lastEpochRatio) }
func BenchmarkFig12(b *testing.B) { run(b, "fig12", errAt) }
func BenchmarkFig13(b *testing.B) { run(b, "fig13", errAt) }
func BenchmarkFig14(b *testing.B) { run(b, "fig14", speedupEnds) }
func BenchmarkFig15(b *testing.B) { run(b, "fig15", speedupEnds) }

func BenchmarkSteadyStateVsPF(b *testing.B) {
	run(b, "tbl-ss", func(t *experiments.Table) map[string]float64 {
		n := len(t.X) - 1
		return map[string]float64{
			"tss_exp_K8": t.Series[0].Y[n],
			"pf_exp_K8":  t.Series[1].Y[n],
			"h2_gap_pct": t.Series[3].Y[n],
		}
	})
}

func BenchmarkApproxVsExact(b *testing.B) {
	run(b, "tbl-approx", func(t *experiments.Table) map[string]float64 {
		e := t.Series[2].Y
		return map[string]float64{
			"apxerr_N5":   e[0],
			"apxerr_N400": e[len(e)-1],
		}
	})
}

func BenchmarkSimValidation(b *testing.B) {
	run(b, "tbl-sim", func(t *experiments.Table) map[string]float64 {
		out := map[string]float64{}
		for i := range t.X {
			out["gap_ci_units"] = maxf(out["gap_ci_units"],
				abs(t.Series[0].Y[i]-t.Series[1].Y[i])/t.Series[2].Y[i])
		}
		return out
	})
}

func BenchmarkCompletionPercentiles(b *testing.B) {
	run(b, "tbl-dist", func(t *experiments.Table) map[string]float64 {
		n := len(t.X) - 1
		return map[string]float64{
			"mean_hiCV": t.Series[0].Y[n],
			"p99_hiCV":  t.Series[3].Y[n],
		}
	})
}

func BenchmarkMultitask(b *testing.B) {
	run(b, "tbl-multi", func(t *experiments.Table) map[string]float64 {
		sp := t.Series[1].Y
		return map[string]float64{
			"sp_degree1": sp[0],
			"sp_degreeN": sp[len(sp)-1],
		}
	})
}

func BenchmarkSchedOverhead(b *testing.B) {
	run(b, "tbl-sched", func(t *experiments.Table) map[string]float64 {
		per, cen := t.Series[0].Y, t.Series[1].Y
		n := len(per) - 1
		return map[string]float64{
			"et_pernode_max": per[n],
			"et_central_max": cen[n],
		}
	})
}

func BenchmarkAvailability(b *testing.B) {
	run(b, "tbl-avail", func(t *experiments.Table) map[string]float64 {
		exact, naive := t.Series[0].Y, t.Series[1].Y
		n := len(exact) - 1
		return map[string]float64{
			"et_exact_worst": exact[n],
			"et_naive_worst": naive[n],
		}
	})
}

func BenchmarkBounds(b *testing.B) {
	run(b, "tbl-bounds", func(t *experiments.Table) map[string]float64 {
		n := len(t.X) - 1
		return map[string]float64{
			"x_pf_K8":        t.Series[2].Y[n],
			"x_transient_K8": t.Series[5].Y[n],
		}
	})
}

func BenchmarkClassMix(b *testing.B) {
	run(b, "tbl-mix", func(t *experiments.Table) map[string]float64 {
		random, bf := t.Series[0].Y, t.Series[1].Y
		mid := len(random) / 2
		return map[string]float64{
			"et_random_mid":     random[mid],
			"et_batchfirst_mid": bf[mid],
		}
	})
}

func BenchmarkStateSpace(b *testing.B) {
	run(b, "tbl-space", func(t *experiments.Table) map[string]float64 {
		n := len(t.X) - 1
		return map[string]float64{"reduction_K8": t.Series[2].Y[n]}
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
