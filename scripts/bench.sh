#!/usr/bin/env bash
# Runs the root perf harness (BenchmarkPerf*) and snapshots the
# results as JSON so successive PRs leave a perf trajectory:
#
#   scripts/bench.sh [BENCH_1.json]
#
# BENCHTIME overrides the per-benchmark budget (default 2s).
# BENCHCOUNT overrides the repetition count (default 3): the whole
# harness runs BENCHCOUNT times and the snapshot records each
# benchmark's *minimum* ns/op and *maximum* bytes/allocs per op.
# Benchmark noise on shared hosts is one-sided — contention and
# frequency throttling only ever slow a run down — so min-of-N
# converges on the machine's true speed. The repetitions are whole
# passes over the harness rather than `go test -count`, which runs a
# benchmark's repetitions back-to-back: noise windows last minutes,
# so adjacent repetitions are correlated and min-of-N over them buys
# nothing, while passes spaced a full harness apart decorrelate. This
# is what keeps recorded baselines and bench_diff.sh's fresh runs
# comparable on hosts whose noise swings exceed the gate tolerance.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_1.json}"
benchtime="${BENCHTIME:-2s}"
benchcount="${BENCHCOUNT:-3}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for pass in $(seq "$benchcount"); do
    echo "== bench pass $pass/$benchcount =="
    go test -run '^$' -bench 'Perf' -benchmem -benchtime "$benchtime" \
        ./internal/matrix ./internal/core ./internal/obs ./internal/serve \
        ./internal/stream ./internal/trace . | tee -a "$tmp"
done

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go env GOVERSION)" \
    -v cpus="$(nproc)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpus\": %s,\n", date, goversion, cpus
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; nsop = $3
    bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    # Keep the fastest ns/op of the -count repetitions, but the
    # *maximum* bytes/allocs seen in any pass: time noise is one-sided
    # slow so min converges on true speed, while allocations on the
    # amortized paths (interval journal flushes, pool/map growth) vary
    # with the iteration count b.N, so the worst pass is the stable
    # conservative baseline for the alloc gate. Alloc-free benchmarks
    # stay pinned at 0 either way.
    if (!(name in min_ns) || nsop + 0 < min_ns[name] + 0) {
        min_ns[name] = nsop; min_it[name] = iters
    }
    if (!(name in max_b) || (bop != "null" && (max_b[name] == "null" || bop + 0 > max_b[name] + 0)))
        max_b[name] = bop
    if (!(name in max_a) || (allocs != "null" && (max_a[name] == "null" || allocs + 0 > max_a[name] + 0)))
        max_a[name] = allocs
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
END {
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (i > 1) printf ",\n"
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, min_it[name], min_ns[name], max_b[name], max_a[name]
    }
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}' "$tmp" > "$out"

echo "wrote $out"
