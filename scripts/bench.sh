#!/usr/bin/env bash
# Runs the root perf harness (BenchmarkPerf*) and snapshots the
# results as JSON so successive PRs leave a perf trajectory:
#
#   scripts/bench.sh [BENCH_1.json]
#
# BENCHTIME overrides the per-benchmark budget (default 2s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_1.json}"
benchtime="${BENCHTIME:-2s}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'Perf' -benchmem -benchtime "$benchtime" \
    ./internal/matrix ./internal/core ./internal/obs ./internal/serve . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go env GOVERSION)" \
    -v cpus="$(nproc)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpus\": %s,\n", date, goversion, cpus
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; nsop = $3
    bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, nsop, bop, allocs
}
END {
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}' "$tmp" > "$out"

echo "wrote $out"
