#!/usr/bin/env bash
# Compares a fresh perf run against a committed benchmark snapshot and
# exits non-zero on regressions:
#
#   scripts/bench_diff.sh [baseline.json] [fresh.json]
#   scripts/bench_diff.sh --self-test
#
# With no baseline argument the newest committed BENCH_*.json is used;
# with no fresh argument scripts/bench.sh runs one (BENCHTIME applies).
#
# A benchmark regresses when its ns/op grows more than NS_TOL_PCT
# (default 20%), or its allocs/op grows more than ALLOC_TOL_PCT
# (default 20%) — except alloc-free baselines (the epoch kernels),
# which must stay at exactly 0 allocs/op. Benchmarks present on only
# one side are reported but never fail the diff, so adding or retiring
# a benchmark does not break CI. Wall-clock comparisons across
# different machines are noisy — CI runs this as an advisory job.
set -euo pipefail
cd "$(dirname "$0")/.."

ns_tol="${NS_TOL_PCT:-20}"
alloc_tol="${ALLOC_TOL_PCT:-20}"

compare() { # baseline.json fresh.json
    awk -v ns_tol="$ns_tol" -v alloc_tol="$alloc_tol" '
    function parse(line) {
        match(line, /"name": "[^"]*"/)
        name = substr(line, RSTART + 9, RLENGTH - 10)
        match(line, /"ns_per_op": [0-9.eE+-]+/)
        ns = substr(line, RSTART + 13, RLENGTH - 13)
        allocs = "null"
        if (match(line, /"allocs_per_op": [0-9]+/))
            allocs = substr(line, RSTART + 17, RLENGTH - 17)
    }
    FNR == NR {
        if (/"name":/) { parse($0); base_ns[name] = ns; base_allocs[name] = allocs }
        next
    }
    /"name":/ {
        parse($0)
        seen[name] = 1
        if (!(name in base_ns)) {
            printf "  new  %-36s ns/op %s (no baseline)\n", name, ns
            next
        }
        bns = base_ns[name] + 0
        lim = bns * (1 + ns_tol / 100)
        if (ns + 0 > lim) {
            printf "REGRESSION %-28s ns/op %d -> %d (limit +%s%%)\n", name, bns, ns, ns_tol
            bad = 1
        } else {
            printf "  ok   %-36s ns/op %d -> %d\n", name, bns, ns
        }
        ba = base_allocs[name]
        if (ba != "null" && allocs != "null") {
            if (ba + 0 == 0) {
                if (allocs + 0 > 0) {
                    printf "REGRESSION %-28s allocs/op 0 -> %s (alloc-free kernel must stay alloc-free)\n", name, allocs
                    bad = 1
                }
            } else if (allocs + 0 > (ba + 0) * (1 + alloc_tol / 100)) {
                printf "REGRESSION %-28s allocs/op %s -> %s (limit +%s%%)\n", name, ba, allocs, alloc_tol
                bad = 1
            }
        }
    }
    END {
        for (n in base_ns) if (!(n in seen))
            printf "  gone %-36s (in baseline only)\n", n
        exit bad
    }' "$1" "$2"
}

self_test() {
    local dir rc
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' RETURN

    cat > "$dir/base.json" <<'EOF'
{
  "benchmarks": [
    {"name": "BenchmarkPerfSteady", "iters": 10, "ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkPerfAllocy", "iters": 10, "ns_per_op": 5000, "bytes_per_op": 64, "allocs_per_op": 10}
  ]
}
EOF
    # Unchanged results must pass.
    if ! compare "$dir/base.json" "$dir/base.json" > /dev/null; then
        echo "bench_diff self-test: identical snapshots flagged as regression" >&2
        return 1
    fi
    # A +50% ns/op regression must fail.
    sed 's/"ns_per_op": 1000/"ns_per_op": 1500/' "$dir/base.json" > "$dir/slow.json"
    rc=0; compare "$dir/base.json" "$dir/slow.json" > /dev/null || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "bench_diff self-test: +50% ns/op regression not caught" >&2
        return 1
    fi
    # An alloc-free kernel growing allocations must fail.
    sed 's/"allocs_per_op": 0}/"allocs_per_op": 2}/' "$dir/base.json" > "$dir/allocs.json"
    rc=0; compare "$dir/base.json" "$dir/allocs.json" > /dev/null || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "bench_diff self-test: 0 -> 2 allocs/op regression not caught" >&2
        return 1
    fi
    # Within-tolerance drift (+10% ns/op) must pass.
    sed 's/"ns_per_op": 1000/"ns_per_op": 1100/' "$dir/base.json" > "$dir/drift.json"
    if ! compare "$dir/base.json" "$dir/drift.json" > /dev/null; then
        echo "bench_diff self-test: +10% drift flagged despite 20% tolerance" >&2
        return 1
    fi
    echo "bench_diff self-test OK"
}

if [ "${1:-}" = "--self-test" ]; then
    self_test
    exit
fi

baseline="${1:-$(ls BENCH_*.json 2> /dev/null | sort -V | tail -1)}"
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_diff: no baseline snapshot found (expected BENCH_*.json)" >&2
    exit 1
fi

fresh="${2:-}"
if [ -z "$fresh" ]; then
    fresh=$(mktemp --suffix=.json)
    trap 'rm -f "$fresh"' EXIT
    scripts/bench.sh "$fresh"
fi

echo "== bench diff: $baseline vs $fresh (ns/op +${ns_tol}%, allocs/op +${alloc_tol}%, alloc-free pinned) =="
compare "$baseline" "$fresh"
