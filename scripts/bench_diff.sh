#!/usr/bin/env bash
# Blocking perf gate: compares a fresh perf run against a committed
# benchmark snapshot and fails the build on regressions:
#
#   scripts/bench_diff.sh [baseline.json] [fresh.json]
#   scripts/bench_diff.sh --self-test
#
# With no baseline argument the newest committed BENCH_*.json is used;
# with no fresh argument scripts/bench.sh runs one (BENCHTIME and
# BENCHCOUNT apply — the fresh run inherits bench.sh's min-of-N
# sampling, which is what makes the relative gates meaningful on
# hosts whose noise windows exceed the tolerances).
#
# Gate contract: a BenchmarkPerf* benchmark regresses when its ns/op
# grows more than NS_TOL_PCT (default 25%), or its allocs/op grows more
# than ALLOC_TOL_PCT (default 25%) — except alloc-free baselines (the
# epoch kernels), which must stay at exactly 0 allocs/op. On top of the
# relative gates, BenchmarkPerfNewSolver* carries a hard allocs/op
# budget (NEWSOLVER_ALLOC_BUDGET, default 1500): solver construction
# through the structured sparse build must stay within it in absolute
# terms, baseline or not. BenchmarkPerfReplayDrive* carries its own
# hard budget (REPLAY_ALLOC_BUDGET, default 15000 allocs/op for a
# 64-request drive): the load driver must stay cheap enough that its
# own overhead never distorts the latencies it reports.
# BenchmarkPerfStreamSolve* carries STREAM_ALLOC_BUDGET (default 1200
# allocs/op for one exact open-mode solve): the job-stream solver
# allocates per (g,d) block, never per uniformization jump. Benchmarks
# outside the BenchmarkPerf* harness are advisory: drift is reported
# but never fails the gate (they have no pinned snapshot discipline).
# Benchmarks present on only one side are reported but never fail the
# diff, so adding or retiring a benchmark does not break CI.
#
# Skipping: set BENCH_GATE=skip (in CI, apply the `skip-bench-gate`
# label to the PR — the workflow maps it to this variable) to bypass
# the gate for a change with a justified perf cost. The skip is loud:
# it prints why the gate did not run.
#
# Exit codes: 0 pass or skipped, 1 regression, 2 setup/usage failure,
# 3 self-test failure.
set -euo pipefail
cd "$(dirname "$0")/.."

ns_tol="${NS_TOL_PCT:-25}"
alloc_tol="${ALLOC_TOL_PCT:-25}"
newsolver_budget="${NEWSOLVER_ALLOC_BUDGET:-1500}"
replay_budget="${REPLAY_ALLOC_BUDGET:-15000}"
stream_budget="${STREAM_ALLOC_BUDGET:-1200}"

compare() { # baseline.json fresh.json
    awk -v ns_tol="$ns_tol" -v alloc_tol="$alloc_tol" -v ns_budget="$newsolver_budget" \
        -v replay_budget="$replay_budget" -v stream_budget="$stream_budget" '
    function parse(line) {
        match(line, /"name": "[^"]*"/)
        name = substr(line, RSTART + 9, RLENGTH - 10)
        match(line, /"ns_per_op": [0-9.eE+-]+/)
        ns = substr(line, RSTART + 13, RLENGTH - 13)
        allocs = "null"
        if (match(line, /"allocs_per_op": [0-9]+/))
            allocs = substr(line, RSTART + 17, RLENGTH - 17)
    }
    # Only the BenchmarkPerf* harness is gated; anything else is
    # advisory because it carries no snapshot discipline.
    function gated(n) { return n ~ /^BenchmarkPerf/ }
    FNR == NR {
        if (/"name":/) { parse($0); base_ns[name] = ns; base_allocs[name] = allocs }
        next
    }
    /"name":/ {
        parse($0)
        seen[name] = 1
        # Hard absolute budget on solver construction allocations —
        # enforced on the fresh run alone, so it bites even for a
        # benchmark with no baseline entry yet.
        if (name ~ /^BenchmarkPerfNewSolver/ && allocs != "null" && allocs + 0 > ns_budget + 0) {
            printf "REGRESSION %-28s allocs/op %s exceeds hard budget %s (NEWSOLVER_ALLOC_BUDGET)\n", name, allocs, ns_budget
            bad = 1
        }
        # Same shape for the replay load driver: its per-drive
        # allocations are an absolute budget, not just a relative drift.
        if (name ~ /^BenchmarkPerfReplayDrive/ && allocs != "null" && allocs + 0 > replay_budget + 0) {
            printf "REGRESSION %-28s allocs/op %s exceeds hard budget %s (REPLAY_ALLOC_BUDGET)\n", name, allocs, replay_budget
            bad = 1
        }
        # And for the job-stream solver: one exact solve must stay
        # within its absolute allocation budget.
        if (name ~ /^BenchmarkPerfStreamSolve/ && allocs != "null" && allocs + 0 > stream_budget + 0) {
            printf "REGRESSION %-28s allocs/op %s exceeds hard budget %s (STREAM_ALLOC_BUDGET)\n", name, allocs, stream_budget
            bad = 1
        }
        if (!(name in base_ns)) {
            printf "  new  %-36s ns/op %s (no baseline)\n", name, ns
            next
        }
        bns = base_ns[name] + 0
        lim = bns * (1 + ns_tol / 100)
        if (ns + 0 > lim) {
            if (gated(name)) {
                printf "REGRESSION %-28s ns/op %d -> %d (limit +%s%%)\n", name, bns, ns, ns_tol
                bad = 1
            } else {
                printf "  warn %-36s ns/op %d -> %d (advisory: not a BenchmarkPerf* target)\n", name, bns, ns
            }
        } else {
            printf "  ok   %-36s ns/op %d -> %d\n", name, bns, ns
        }
        ba = base_allocs[name]
        if (ba != "null" && allocs != "null") {
            if (ba + 0 == 0) {
                if (allocs + 0 > 0) {
                    if (gated(name)) {
                        printf "REGRESSION %-28s allocs/op 0 -> %s (alloc-free kernel must stay alloc-free)\n", name, allocs
                        bad = 1
                    } else {
                        printf "  warn %-36s allocs/op 0 -> %s (advisory)\n", name, allocs
                    }
                }
            } else if (allocs + 0 > (ba + 0) * (1 + alloc_tol / 100)) {
                if (gated(name)) {
                    printf "REGRESSION %-28s allocs/op %s -> %s (limit +%s%%)\n", name, ba, allocs, alloc_tol
                    bad = 1
                } else {
                    printf "  warn %-36s allocs/op %s -> %s (advisory)\n", name, ba, allocs
                }
            }
        }
    }
    END {
        for (n in base_ns) if (!(n in seen))
            printf "  gone %-36s (in baseline only)\n", n
        exit bad
    }' "$1" "$2"
}

self_test() {
    local dir rc
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' RETURN

    cat > "$dir/base.json" <<'EOF'
{
  "benchmarks": [
    {"name": "BenchmarkPerfSteady", "iters": 10, "ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkPerfAllocy", "iters": 10, "ns_per_op": 5000, "bytes_per_op": 64, "allocs_per_op": 10},
    {"name": "BenchmarkSideshow", "iters": 10, "ns_per_op": 2000, "bytes_per_op": 0, "allocs_per_op": 1}
  ]
}
EOF
    # Unchanged results must pass.
    if ! compare "$dir/base.json" "$dir/base.json" > /dev/null; then
        echo "bench_diff self-test: identical snapshots flagged as regression" >&2
        return 1
    fi
    # A +50% ns/op regression on a gated benchmark must fail with the
    # documented exit code 1 — the gate is blocking, so the code is
    # part of the contract.
    sed 's/"ns_per_op": 1000/"ns_per_op": 1500/' "$dir/base.json" > "$dir/slow.json"
    rc=0; compare "$dir/base.json" "$dir/slow.json" > /dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench_diff self-test: +50% ns/op regression exit $rc, want 1" >&2
        return 1
    fi
    # An alloc-free kernel growing allocations must fail.
    rc=0
    sed 's/"allocs_per_op": 0}/"allocs_per_op": 2}/' "$dir/base.json" > "$dir/allocs.json"
    rc=0; compare "$dir/base.json" "$dir/allocs.json" > /dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench_diff self-test: 0 -> 2 allocs/op regression exit $rc, want 1" >&2
        return 1
    fi
    # Within-tolerance drift (+20% ns/op against the 25% gate) must pass.
    sed 's/"ns_per_op": 1000/"ns_per_op": 1200/' "$dir/base.json" > "$dir/drift.json"
    if ! compare "$dir/base.json" "$dir/drift.json" > /dev/null; then
        echo "bench_diff self-test: +20% drift flagged despite ${ns_tol}% tolerance" >&2
        return 1
    fi
    # A huge regression on a non-Perf benchmark is advisory: reported
    # as a warning, never a gate failure.
    sed 's/"ns_per_op": 2000/"ns_per_op": 9000/' "$dir/base.json" > "$dir/side.json"
    local out
    rc=0; out=$(compare "$dir/base.json" "$dir/side.json") || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "bench_diff self-test: advisory benchmark regression blocked the gate (exit $rc)" >&2
        return 1
    fi
    if ! grep -q 'warn .*BenchmarkSideshow' <<< "$out"; then
        echo "bench_diff self-test: advisory regression not reported as a warning:" >&2
        echo "$out" >&2
        return 1
    fi
    # The hard NewSolver alloc budget: a construction benchmark over
    # NEWSOLVER_ALLOC_BUDGET must fail even with a matching (equally
    # bloated) baseline, and one within budget must pass. The fixtures
    # carry allocs/op exactly as `go test -benchmem` reports them —
    # this is the -benchmem-based budget path end to end.
    local saved_budget="$newsolver_budget"
    newsolver_budget=1500
    cat > "$dir/solver_base.json" <<'EOF'
{
  "benchmarks": [
    {"name": "BenchmarkPerfNewSolverK8H2", "iters": 10, "ns_per_op": 2000000, "bytes_per_op": 1200000, "allocs_per_op": 1100}
  ]
}
EOF
    if ! compare "$dir/solver_base.json" "$dir/solver_base.json" > /dev/null; then
        echo "bench_diff self-test: within-budget NewSolver allocs flagged as regression" >&2
        return 1
    fi
    sed 's/"allocs_per_op": 1100/"allocs_per_op": 2000/' "$dir/solver_base.json" > "$dir/solver_fat.json"
    rc=0; compare "$dir/solver_fat.json" "$dir/solver_fat.json" > /dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench_diff self-test: NewSolver allocs over hard budget exit $rc, want 1" >&2
        return 1
    fi
    newsolver_budget="$saved_budget"

    # The replay-driver hard budget mirrors the NewSolver one: over
    # budget fails even against an equally bloated baseline, within
    # budget passes.
    local saved_replay="$replay_budget"
    replay_budget=15000
    cat > "$dir/replay_base.json" <<'EOF'
{
  "benchmarks": [
    {"name": "BenchmarkPerfReplayDrive", "iters": 100, "ns_per_op": 15000000, "bytes_per_op": 1100000, "allocs_per_op": 9500}
  ]
}
EOF
    if ! compare "$dir/replay_base.json" "$dir/replay_base.json" > /dev/null; then
        echo "bench_diff self-test: within-budget ReplayDrive allocs flagged as regression" >&2
        return 1
    fi
    sed 's/"allocs_per_op": 9500/"allocs_per_op": 20000/' "$dir/replay_base.json" > "$dir/replay_fat.json"
    rc=0; compare "$dir/replay_fat.json" "$dir/replay_fat.json" > /dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench_diff self-test: ReplayDrive allocs over hard budget exit $rc, want 1" >&2
        return 1
    fi
    replay_budget="$saved_replay"

    # The stream-solver hard budget follows the same contract: over
    # budget fails even against an equally bloated baseline, within
    # budget passes.
    local saved_stream="$stream_budget"
    stream_budget=1200
    cat > "$dir/stream_base.json" <<'EOF'
{
  "benchmarks": [
    {"name": "BenchmarkPerfStreamSolve", "iters": 500, "ns_per_op": 2000000, "bytes_per_op": 190000, "allocs_per_op": 900}
  ]
}
EOF
    if ! compare "$dir/stream_base.json" "$dir/stream_base.json" > /dev/null; then
        echo "bench_diff self-test: within-budget StreamSolve allocs flagged as regression" >&2
        return 1
    fi
    sed 's/"allocs_per_op": 900/"allocs_per_op": 1600/' "$dir/stream_base.json" > "$dir/stream_fat.json"
    rc=0; compare "$dir/stream_fat.json" "$dir/stream_fat.json" > /dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench_diff self-test: StreamSolve allocs over hard budget exit $rc, want 1" >&2
        return 1
    fi
    stream_budget="$saved_stream"

    # A benchmark present in the baseline only must never fail the diff.
    grep -v 'BenchmarkPerfAllocy' "$dir/base.json" > "$dir/gone.json"
    local gone_out
    rc=0; gone_out=$(compare "$dir/base.json" "$dir/gone.json") || rc=$?
    if [ "$rc" -ne 0 ] || ! grep -q 'gone .*BenchmarkPerfAllocy' <<< "$gone_out"; then
        echo "bench_diff self-test: baseline-only benchmark mishandled (exit $rc):" >&2
        echo "$gone_out" >&2
        return 1
    fi
    echo "bench_diff self-test OK"
}

if [ "${BENCH_GATE:-}" = "skip" ]; then
    echo "bench_diff: gate skipped (BENCH_GATE=skip — set by the skip-bench-gate PR label in CI)"
    exit 0
fi

if [ "${1:-}" = "--self-test" ]; then
    if ! self_test; then
        exit 3
    fi
    exit 0
fi

baseline="${1:-$(ls BENCH_*.json 2> /dev/null | sort -V | tail -1)}"
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_diff: no baseline snapshot found (expected BENCH_*.json)" >&2
    exit 2
fi

fresh="${2:-}"
if [ -z "$fresh" ]; then
    fresh=$(mktemp --suffix=.json)
    trap 'rm -f "$fresh"' EXIT
    # The fresh side gets more min-merged passes than the default
    # snapshot (5 vs 3): the committed baseline is a fixed draw, so
    # giving the fresh run extra chances to hit an unloaded window
    # biases the comparison against false regressions without ever
    # hiding a real one (a code regression is slow in every window).
    BENCHCOUNT="${BENCHCOUNT:-5}" scripts/bench.sh "$fresh"
fi

echo "== bench diff: $baseline vs $fresh (BenchmarkPerf* gate: ns/op +${ns_tol}%, allocs/op +${alloc_tol}%, alloc-free pinned) =="
if ! compare "$baseline" "$fresh"; then
    echo "bench_diff: perf gate FAILED — justify and apply the skip-bench-gate label, or fix the regression" >&2
    exit 1
fi
