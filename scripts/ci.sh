#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration smoke pass over the perf
# benchmarks. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== serve resilience (-race, uncached) =="
# The serving layer is concurrency-heavy (admission queue, breakers,
# singleflight, drain); run its suite explicitly and uncached so the
# race detector sees it on every CI pass.
go test -race -count=1 ./internal/serve

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench . -benchtime 1x ./internal/matrix ./internal/core ./internal/serve .

echo "== fuzz seed smoke =="
# Each target's seed corpus runs as ordinary tests; a short -fuzz burst
# per target catches regressions the fixed seeds miss.
for target in FuzzNetworkPipeline FuzzPHFit FuzzRobustSolve; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 5s ./internal/faultcheck
done

echo "== cmd exit-code smoke =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/" ./cmd/...

expect_exit() { # expected-status description command...
    local want=$1 what=$2; shift 2
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [ "$got" -ne "$want" ]; then
        echo "cmd smoke: $what: exit $got, want $want" >&2
        exit 1
    fi
}
expect_exit 0 "sweep ok"           "$bindir/sweep" -arch central -k 3 -var n -from 5 -to 10 -steps 2
expect_exit 0 "phfit ok"           "$bindir/phfit" -family h2 -mean 12 -cv2 10
expect_exit 0 "clustersim ok"      "$bindir/clustersim" -k 2 -n 6 -reps 50 -quiet
expect_exit 0 "finwl ok"           "$bindir/finwl" -exp fig3
expect_exit 2 "sweep bad arch"     "$bindir/sweep" -arch nope
expect_exit 2 "phfit bad family"   "$bindir/phfit" -family nope
expect_exit 2 "finwl bad exp"      "$bindir/finwl" -exp nope
expect_exit 1 "finwl timeout"      "$bindir/finwl" -exp tbl-sim -timeout 5ms

echo "== finwld serve smoke =="
# Boot the daemon on an ephemeral port, solve once over HTTP, assert a
# full-fidelity answer, then SIGTERM and require a clean drain (exit 0).
"$bindir/finwld" -addr 127.0.0.1:0 >"$bindir/finwld.log" 2>&1 &
finwld_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^finwld listening on //p' "$bindir/finwld.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "finwld smoke: daemon never reported its address" >&2
    cat "$bindir/finwld.log" >&2
    exit 1
fi
body=$(curl -s -X POST -d '{"arch":"central","k":3,"n":10}' "http://$addr/solve")
if ! echo "$body" | grep -q '"fidelity":"exact"'; then
    echo "finwld smoke: unexpected /solve body: $body" >&2
    exit 1
fi
# A 1ms deadline either degrades (deadline below the exact-tier
# estimate → tagged approximation) or, if request setup already ate the
# budget, cancels with a typed 504; both prove the deadline path
# end-to-end. The full (deadline × breaker) fidelity matrix is covered
# deterministically by the serve package tests.
degraded=$(curl -s -X POST -d '{"arch":"central","k":10,"n":50,"timeout_ms":1}' "http://$addr/solve")
if ! echo "$degraded" | grep -Eq '"degraded_from"|"code":"canceled"'; then
    echo "finwld smoke: 1ms deadline neither degraded nor canceled: $degraded" >&2
    exit 1
fi
kill -TERM "$finwld_pid"
rc=0
wait "$finwld_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "finwld smoke: exit $rc after SIGTERM, want a clean drain (0)" >&2
    cat "$bindir/finwld.log" >&2
    exit 1
fi

echo "CI OK"
