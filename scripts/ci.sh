#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration smoke pass over the perf
# benchmarks. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench . -benchtime 1x ./internal/matrix ./internal/core .

echo "CI OK"
