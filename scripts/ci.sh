#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration smoke pass over the perf
# benchmarks. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race + coverage =="
# One instrumented run feeds both gates: the race detector over the
# full suite, and the coverage ratchet against scripts/coverage_floor.txt
# (raise the floor when coverage rises; it must never fall below it).
scratch=$(mktemp -d)
bindir="$scratch/bin"
mkdir -p "$bindir"
# Artifacts (the replay SLO report, the recorded trace, the crash-smoke
# journal) land in CI_ARTIFACT_DIR when set, so the workflow can upload
# them even after a failure; locally they stay in the scratch dir and
# vanish with it.
artdir="${CI_ARTIFACT_DIR:-$scratch}"
mkdir -p "$artdir"

# Every daemon any smoke boots is registered here, and the one EXIT
# trap tears them all down. On a failing exit the trap also copies
# every daemon log into the artifact dir — the journal and the replay
# report are written straight into $artdir — so a red smoke always
# leaves its evidence uploadable, whichever smoke broke.
smoke_pids=()
cleanup() {
    rc=$?
    [ "${#smoke_pids[@]}" -gt 0 ] && kill "${smoke_pids[@]}" 2>/dev/null || true
    if [ "$rc" -ne 0 ] && [ "$artdir" != "$scratch" ]; then
        mkdir -p "$artdir/logs"
        cp "$bindir"/*.log "$artdir/logs/" 2>/dev/null || true
    fi
    rm -rf "$scratch"
}
trap cleanup EXIT
go test -race -covermode=atomic -coverprofile="$scratch/cover.out" ./...

echo "== coverage floor =="
floor=$(cat scripts/coverage_floor.txt)
total=$(go tool cover -func="$scratch/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "coverage ${total}% fell below the floor ${floor}%" >&2
    exit 1
fi
# Ratchet nudge: when coverage clears the floor by more than 2 points,
# suggest raising the floor so the slack cannot silently erode. This
# never fails the build — raising the floor is a reviewed change.
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t > f + 2) }'; then
    suggest=$(awk -v t="$total" 'BEGIN { printf "%.1f", t - 1 }')
    msg="coverage ${total}% is more than 2 points above the floor ${floor}%: consider raising scripts/coverage_floor.txt to ${suggest}"
    echo "$msg"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        echo "### Coverage ratchet" >> "$GITHUB_STEP_SUMMARY"
        echo "$msg" >> "$GITHUB_STEP_SUMMARY"
    fi
fi

echo "== serve resilience (-race, uncached) =="
# The serving layer is concurrency-heavy (admission queue, breakers,
# singleflight, drain); run its suite explicitly and uncached so the
# race detector sees it on every CI pass.
go test -race -count=1 ./internal/serve

echo "== bench smoke (1 iteration) =="
# Discover every benchmark-bearing package instead of hand-listing
# them, so a new package's benchmarks cannot be silently skipped.
benchpkgs=$(grep -rl --include='*_test.go' -E '^func Benchmark' . \
    | xargs -n1 dirname | sort -u)
echo "benchmark packages:" $benchpkgs
go test -run '^$' -bench . -benchtime 1x $benchpkgs

echo "== bench_diff self-test =="
scripts/bench_diff.sh --self-test

echo "== fuzz seed smoke =="
# Each target's seed corpus runs as ordinary tests; a short -fuzz burst
# per target catches regressions the fixed seeds miss.
for entry in \
    internal/faultcheck:FuzzNetworkPipeline \
    internal/faultcheck:FuzzPHFit \
    internal/faultcheck:FuzzRobustSolve \
    internal/faultcheck:FuzzJournalReplay \
    internal/faultcheck:FuzzStreamSpec \
    internal/spec:FuzzSpecParse; do
    pkg=${entry%%:*}
    target=${entry##*:}
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 5s "./$pkg"
done

echo "== stream sim-equivalence gate =="
# Blocking: the job-stream solver must agree with the discrete-event
# simulator within 3σ across the law × mode matrix (deterministic,
# poisson, bursty × open, closed). The nightly sim-equivalence job
# reruns this with an order of magnitude more replications.
go test -count=1 -run '^TestStreamSimEquivalence$' ./internal/stream

echo "== cmd exit-code smoke =="
go build -o "$bindir/" ./cmd/...

expect_exit() { # expected-status description command...
    local want=$1 what=$2; shift 2
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [ "$got" -ne "$want" ]; then
        echo "cmd smoke: $what: exit $got, want $want" >&2
        exit 1
    fi
}
expect_exit 0 "sweep ok"           "$bindir/sweep" -arch central -k 3 -var n -from 5 -to 10 -steps 2
expect_exit 0 "phfit ok"           "$bindir/phfit" -family h2 -mean 12 -cv2 10
expect_exit 0 "clustersim ok"      "$bindir/clustersim" -k 2 -n 6 -reps 50 -quiet
expect_exit 0 "finwl ok"           "$bindir/finwl" -exp fig3
expect_exit 2 "sweep bad arch"     "$bindir/sweep" -arch nope
expect_exit 2 "phfit bad family"   "$bindir/phfit" -family nope
expect_exit 2 "finwl bad exp"      "$bindir/finwl" -exp nope
expect_exit 1 "finwl timeout"      "$bindir/finwl" -exp tbl-sim -timeout 5ms

scrape_addr() { # logfile
    local a=""
    for _ in $(seq 1 100); do
        a=$(sed -n 's/^finwld listening on //p' "$1")
        [ -n "$a" ] && break
        sleep 0.1
    done
    if [ -z "$a" ]; then
        echo "smoke: daemon behind $1 never reported its address" >&2
        cat "$1" >&2
        exit 1
    fi
    echo "$a"
}
wait_healthy() { # addr — poll /healthz instead of sleeping blind
    for _ in $(seq 1 100); do
        curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "smoke: daemon at $1 never became healthy" >&2
    exit 1
}
boot_daemon() { # name args... — boot a finwld, register it for
    # teardown, block until healthy; sets daemon_pid and daemon_addr.
    # FINWLD_BIN overrides the binary (the replay smoke boots the
    # race-instrumented build).
    local name=$1; shift
    local log="$bindir/$name.log"
    "${FINWLD_BIN:-$bindir/finwld}" "$@" >"$log" 2>&1 &
    daemon_pid=$!
    smoke_pids+=("$daemon_pid")
    daemon_addr=$(scrape_addr "$log")
    wait_healthy "$daemon_addr"
}
drain_daemon() { # pid name — SIGTERM and require a clean drain (0)
    local pid=$1 name=$2 rc=0
    kill -TERM "$pid"
    wait "$pid" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "smoke: $name exit $rc after SIGTERM, want a clean drain (0)" >&2
        cat "$bindir/$name.log" >&2
        exit 1
    fi
}

echo "== finwld serve smoke =="
# Boot the daemon (admin listener on) on ephemeral ports, solve once
# over HTTP, assert a full-fidelity answer with a timings breakdown,
# scrape /metrics on both surfaces, then SIGTERM and require a clean
# drain (exit 0).
boot_daemon finwld -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0
finwld_pid=$daemon_pid
addr=$daemon_addr
admin_addr=$(sed -n 's/^finwld admin listening on //p' "$bindir/finwld.log")
if [ -z "$admin_addr" ]; then
    echo "finwld smoke: daemon never reported its admin address" >&2
    cat "$bindir/finwld.log" >&2
    exit 1
fi
body=$(curl -s -X POST -d '{"arch":"central","k":3,"n":10}' "http://$addr/solve")
if ! grep -q '"fidelity":"exact"' <<< "$body"; then
    echo "finwld smoke: unexpected /solve body: $body" >&2
    exit 1
fi
if ! grep -q '"timings"' <<< "$body"; then
    echo "finwld smoke: /solve body carries no timings breakdown: $body" >&2
    exit 1
fi
# The request log is structured: the solve above must appear as one
# JSON slog line carrying its request ID and status.
if ! grep -q '"msg":"request".*"status":200' "$bindir/finwld.log"; then
    echo "finwld smoke: no structured request-log line for the solve" >&2
    cat "$bindir/finwld.log" >&2
    exit 1
fi
# Both metric surfaces serve the same exposition: the admin listener
# and the service /metrics route; serve- and solver-stage families
# must be present and the request counter populated.
# (grep -q never sits downstream of curl here: under pipefail the
# early grep exit would EPIPE curl and flake the pipeline.)
for murl in "http://$admin_addr/metrics" "http://$addr/metrics"; do
    page=$(curl -s --retry 2 "$murl")
    for family in finwld_requests_total finwld_tier_total finwl_solves_total finwl_lu_factor_seconds_bucket; do
        if ! grep -q "^$family" <<< "$page"; then
            echo "finwld smoke: $murl missing metric family $family" >&2
            head -40 <<< "$page" >&2
            exit 1
        fi
    done
    if ! grep -q '^finwld_requests_total 1' <<< "$page"; then
        echo "finwld smoke: $murl request counter did not count the solve:" >&2
        grep '^finwld_requests_total' <<< "$page" >&2
        exit 1
    fi
done
# pprof and expvar ride the admin listener only.
vars=$(curl -s "http://$admin_addr/debug/vars")
if ! grep -q '"cmdline"' <<< "$vars"; then
    echo "finwld smoke: /debug/vars not serving expvar" >&2
    exit 1
fi
pprof_status=$(curl -s -o /dev/null -w '%{http_code}' "http://$admin_addr/debug/pprof/")
if [ "$pprof_status" != 200 ]; then
    echo "finwld smoke: /debug/pprof/ status $pprof_status, want 200" >&2
    exit 1
fi
# Batch smoke: three same-network jobs through POST /batch must come
# back fully solved in one submission, and the batch counters must
# show the jobs shared a single chain (3 jobs, 1 group, 2 reuses).
batch=$(curl -s -X POST -d '[{"arch":"central","k":4,"n":12},{"arch":"central","k":4,"n":14},{"arch":"central","k":4,"n":16}]' "http://$addr/batch")
if [ "$(grep -o '"total_time":' <<< "$batch" | wc -l)" -ne 3 ]; then
    echo "finwld smoke: /batch did not solve all three jobs: $batch" >&2
    exit 1
fi
stats=$(curl -s "http://$addr/stats")
if ! grep -q '"batch_jobs":3' <<< "$stats" || ! grep -q '"batch_groups":1' <<< "$stats" \
    || ! grep -q '"batch_chain_reuse":2' <<< "$stats"; then
    echo "finwld smoke: batch counters disagree with one shared-chain group: $stats" >&2
    exit 1
fi
# Async smoke: submit the same shape through POST /jobs, poll the
# returned id to completion, and require all results retained.
accepted=$(curl -s -X POST -d '[{"arch":"central","k":4,"n":18},{"arch":"central","k":4,"n":20}]' "http://$addr/jobs")
poll=$(sed -n 's/.*"poll":"\([^"]*\)".*/\1/p' <<< "$accepted")
if [ -z "$poll" ]; then
    echo "finwld smoke: /jobs submission not accepted: $accepted" >&2
    exit 1
fi
job=""
for _ in $(seq 1 100); do
    job=$(curl -s "http://$addr$poll")
    grep -q '"state":"done"' <<< "$job" && break
    sleep 0.1
done
if ! grep -q '"state":"done"' <<< "$job"; then
    echo "finwld smoke: async job never finished: $job" >&2
    exit 1
fi
if [ "$(grep -o '"total_time":' <<< "$job" | wc -l)" -ne 2 ]; then
    echo "finwld smoke: async job results incomplete: $job" >&2
    exit 1
fi
# Stream smoke: an open job stream must come back exact with a drain
# time and one mean-tasks value per probe; a closed pool must come
# back exact with no drain outputs; a stream with no mode must be
# refused with a typed 400.
ostream=$(curl -s -X POST -d '{"arch":"central","k":2,"job_tasks":3,"jobs":2,"arrival":{"process":"poisson","mean":2},"probes":[0.5,2]}' "http://$addr/stream")
if ! grep -q '"fidelity":"exact"' <<< "$ostream" || ! grep -q '"mode":"open"' <<< "$ostream" \
    || ! grep -q '"mean_drain":' <<< "$ostream" \
    || [ "$(grep -o '"mean_tasks":\[[^]]*\]' <<< "$ostream" | grep -oc ',')" -ne 1 ]; then
    echo "finwld smoke: unexpected open /stream body: $ostream" >&2
    exit 1
fi
cstream=$(curl -s -X POST -d '{"arch":"central","k":2,"job_tasks":3,"customers":2,"think":{"process":"deterministic","mean":3},"probes":[1,4]}' "http://$addr/stream")
if ! grep -q '"fidelity":"exact"' <<< "$cstream" || ! grep -q '"mode":"closed"' <<< "$cstream" \
    || grep -q '"mean_drain":' <<< "$cstream"; then
    echo "finwld smoke: unexpected closed /stream body: $cstream" >&2
    exit 1
fi
badstream_status=$(curl -s -o "$scratch/badstream.json" -w '%{http_code}' \
    -X POST -d '{"k":2,"job_tasks":2}' "http://$addr/stream")
if [ "$badstream_status" != 400 ] || ! grep -q '"code":"invalid_model"' "$scratch/badstream.json"; then
    echo "finwld smoke: modeless stream not refused typed: $badstream_status $(cat "$scratch/badstream.json")" >&2
    exit 1
fi
# A 1ms deadline either degrades (deadline below the exact-tier
# estimate → tagged approximation) or, if request setup already ate the
# budget, cancels with a typed 504; both prove the deadline path
# end-to-end. The full (deadline × breaker) fidelity matrix is covered
# deterministically by the serve package tests.
degraded=$(curl -s -X POST -d '{"arch":"central","k":10,"n":50,"timeout_ms":1}' "http://$addr/solve")
if ! grep -Eq '"degraded_from"|"code":"canceled"' <<< "$degraded"; then
    echo "finwld smoke: 1ms deadline neither degraded nor canceled: $degraded" >&2
    exit 1
fi
drain_daemon "$finwld_pid" finwld

echo "== finwld fleet smoke =="
# Boot two replica daemons plus a router over them, solve through the
# router, SIGKILL whichever replica answered, and require the repeat
# request (same model, fresh population, so the same shard but a cold
# result cache) to come back correct via failover — then a clean
# SIGTERM drain of the router.
boot_daemon rep1 -addr 127.0.0.1:0 -quiet
rep1_pid=$daemon_pid
rep1_url="http://$daemon_addr"
boot_daemon rep2 -addr 127.0.0.1:0 -quiet
rep2_pid=$daemon_pid
rep2_url="http://$daemon_addr"
boot_daemon router -addr 127.0.0.1:0 -router "$rep1_url,$rep2_url" \
    -probe-interval 200ms
router_pid=$daemon_pid
router_addr=$daemon_addr
body=$(curl -s -X POST -d '{"arch":"central","k":3,"n":10}' "http://$router_addr/solve")
via=$(sed -n 's/.*"routed_via":"\([^"]*\)".*/\1/p' <<< "$body")
if [ -z "$via" ]; then
    echo "fleet smoke: routed solve carries no routed_via: $body" >&2
    exit 1
fi
owner_url=${via##* }
case "$owner_url" in
"$rep1_url") victim=$rep1_pid; survivor_url=$rep2_url ;;
"$rep2_url") victim=$rep2_pid; survivor_url=$rep1_url ;;
*)  echo "fleet smoke: routed_via $via names neither replica" >&2
    exit 1 ;;
esac
kill -KILL "$victim"
wait "$victim" 2>/dev/null || true
body=$(curl -s -X POST -d '{"arch":"central","k":3,"n":11}' "http://$router_addr/solve")
via=$(sed -n 's/.*"routed_via":"\([^"]*\)".*/\1/p' <<< "$body")
if ! grep -q '"total_time":' <<< "$body" || [ "${via##* }" != "$survivor_url" ]; then
    echo "fleet smoke: solve after SIGKILL of $owner_url did not fail over: $body" >&2
    cat "$bindir/router.log" >&2
    exit 1
fi
page=$(curl -s "http://$router_addr/metrics")
if ! grep -Eq '^finwl_fleet_failover_total [1-9]' <<< "$page"; then
    echo "fleet smoke: failover counter did not move:" >&2
    grep '^finwl_fleet' <<< "$page" >&2
    exit 1
fi
for rep_url in "$rep1_url" "$rep2_url"; do
    if ! grep -qF "finwl_fleet_replica_healthy{replica=\"$rep_url\"}" <<< "$page"; then
        echo "fleet smoke: /metrics missing health gauge for $rep_url" >&2
        grep '^finwl_fleet' <<< "$page" >&2
        exit 1
    fi
done
stats=$(curl -s "http://$router_addr/stats")
if ! grep -q '"mode":"router"' <<< "$stats" \
    || ! grep -Eq '"failovers":[1-9]' <<< "$stats"; then
    echo "fleet smoke: router /stats incoherent: $stats" >&2
    exit 1
fi
drain_daemon "$router_pid" router
kill -TERM "$rep1_pid" "$rep2_pid" 2>/dev/null || true

echo "== finwld crash-recovery smoke =="
# Journal-backed daemon, a multi-group async batch submitted under an
# Idempotency-Key, SIGKILL with no drain, then a restart over the same
# journal directory: the job must reach done with every result intact,
# and replaying the same key must map back to the same job ID.
jdir="$artdir/journal"
jobs_body='[{"arch":"central","k":9,"n":46},{"arch":"central","k":9,"n":48},{"arch":"central","k":10,"n":50}]'
boot_daemon crash1 -addr 127.0.0.1:0 -quiet -journal "$jdir" -fsync always
crash_pid=$daemon_pid
crash_addr=$daemon_addr
accepted=$(curl -s -X POST -H 'Idempotency-Key: ci-crash' -d "$jobs_body" "http://$crash_addr/jobs")
job_id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<< "$accepted")
if [ -z "$job_id" ]; then
    echo "crash smoke: /jobs submission not accepted: $accepted" >&2
    exit 1
fi
# SIGKILL immediately: the fsync-always journal is all the restart gets.
kill -KILL "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
boot_daemon crash2 -addr 127.0.0.1:0 -quiet -journal "$jdir" -fsync always
crash_pid=$daemon_pid
crash_addr=$daemon_addr
job=""
for _ in $(seq 1 100); do
    job=$(curl -s "http://$crash_addr/jobs/$job_id")
    grep -q '"state":"done"' <<< "$job" && break
    sleep 0.1
done
if ! grep -q '"state":"done"' <<< "$job"; then
    echo "crash smoke: recovered job never finished: $job" >&2
    cat "$bindir/crash2.log" >&2
    exit 1
fi
if [ "$(grep -o '"total_time":' <<< "$job" | wc -l)" -ne 3 ]; then
    echo "crash smoke: recovered job lost results: $job" >&2
    exit 1
fi
again=$(curl -s -X POST -H 'Idempotency-Key: ci-crash' -d "$jobs_body" "http://$crash_addr/jobs")
again_id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<< "$again")
if [ "$again_id" != "$job_id" ]; then
    echo "crash smoke: replayed Idempotency-Key minted a new job: $again_id vs $job_id" >&2
    exit 1
fi
drain_daemon "$crash_pid" crash2

echo "== finwld replay smoke (-race) =="
# The SLO gate, end to end: boot a race-instrumented daemon, replay the
# committed 3-class example spec through all three serving surfaces
# with -gate (every class must hit its attainment target and zero
# untyped 5xx may appear), then prove trace determinism from the CLI:
# the recorded trace re-records byte-identically. The driver is the
# most concurrent client the server sees, so the -race build doubles
# as a client/server race probe.
go build -race -o "$bindir/finwld.race" ./cmd/finwld
FINWLD_BIN="$bindir/finwld.race" boot_daemon replay-srv -addr 127.0.0.1:0 -quiet
replay_pid=$daemon_pid
replay_addr=$daemon_addr
report="$artdir/replay-report.json"
rtrace="$artdir/replay-trace.jsonl"
"$bindir/finwld.race" -replay examples/spec-mixed.yaml -target "http://$replay_addr" \
    -record "$rtrace" -report "$report" -gate -time-scale 0.2
# The report must be well-formed: per-class attainment present, the
# latency-over-time timeline populated, the gate fields present, and
# zero untyped 5xx (a 5xx with no typed wire code is a crash, not a
# policy outcome).
for field in '"classes"' '"attainment"' '"timeline"' '"slo_met": true' '"untyped_5xx": 0'; do
    if ! grep -q "$field" "$report"; then
        echo "replay smoke: report missing $field:" >&2
        cat "$report" >&2
        exit 1
    fi
done
if grep -Eq '"untyped_5xx": [1-9]' "$report"; then
    echo "replay smoke: untyped 5xx responses in report:" >&2
    cat "$report" >&2
    exit 1
fi
# Determinism from the CLI: replaying the recorded trace and
# re-recording it must reproduce the file byte for byte.
"$bindir/finwld.race" -replay "$rtrace" -record "$scratch/replay-trace2.jsonl" >/dev/null
if ! cmp -s "$rtrace" "$scratch/replay-trace2.jsonl"; then
    echo "replay smoke: record → replay → re-record changed the trace bytes" >&2
    exit 1
fi
# The committed stream example replays through the same gate: both
# job-stream modes travel the /stream surface end to end under the
# race-instrumented daemon.
stream_report="$artdir/replay-stream-report.json"
"$bindir/finwld.race" -replay examples/spec-stream.yaml -target "http://$replay_addr" \
    -report "$stream_report" -gate -time-scale 0.2
for field in '"endpoint": "stream"' '"timeline"' '"slo_met": true' '"untyped_5xx": 0'; do
    if ! grep -q "$field" "$stream_report"; then
        echo "replay smoke: stream report missing $field:" >&2
        cat "$stream_report" >&2
        exit 1
    fi
done
drain_daemon "$replay_pid" replay-srv

echo "CI OK"
