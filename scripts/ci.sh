#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration smoke pass over the perf
# benchmarks. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench . -benchtime 1x ./internal/matrix ./internal/core .

echo "== fuzz seed smoke =="
# Each target's seed corpus runs as ordinary tests; a short -fuzz burst
# per target catches regressions the fixed seeds miss.
for target in FuzzNetworkPipeline FuzzPHFit FuzzRobustSolve; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 5s ./internal/faultcheck
done

echo "== cmd exit-code smoke =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/" ./cmd/...

expect_exit() { # expected-status description command...
    local want=$1 what=$2; shift 2
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [ "$got" -ne "$want" ]; then
        echo "cmd smoke: $what: exit $got, want $want" >&2
        exit 1
    fi
}
expect_exit 0 "sweep ok"           "$bindir/sweep" -arch central -k 3 -var n -from 5 -to 10 -steps 2
expect_exit 0 "phfit ok"           "$bindir/phfit" -family h2 -mean 12 -cv2 10
expect_exit 0 "clustersim ok"      "$bindir/clustersim" -k 2 -n 6 -reps 50 -quiet
expect_exit 0 "finwl ok"           "$bindir/finwl" -exp fig3
expect_exit 2 "sweep bad arch"     "$bindir/sweep" -arch nope
expect_exit 2 "phfit bad family"   "$bindir/phfit" -family nope
expect_exit 2 "finwl bad exp"      "$bindir/finwl" -exp nope
expect_exit 1 "finwl timeout"      "$bindir/finwl" -exp tbl-sim -timeout 5ms

echo "CI OK"
