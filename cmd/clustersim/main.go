// Command clustersim runs the discrete-event simulator on a cluster
// configuration and compares it against the analytic transient model
// — per-epoch and in total, with confidence intervals.
//
// Usage:
//
//	clustersim -arch central -k 5 -n 30 -remote-cv2 10 -reps 5000
//	clustersim -arch distributed -k 3 -n 20 -cpu-cv2 0.5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/sim"
	"finwl/internal/workload"
)

func main() {
	var (
		arch      = flag.String("arch", "central", "central | distributed")
		k         = flag.Int("k", 5, "workstations")
		n         = flag.Int("n", 30, "tasks in the workload")
		reps      = flag.Int("reps", 4000, "simulation replications")
		seed      = flag.Int64("seed", 1, "simulation seed")
		cpuCV2    = flag.Float64("cpu-cv2", 1, "CPU service C²")
		remoteCV2 = flag.Float64("remote-cv2", 1, "shared storage C²")
		lowCont   = flag.Bool("low-contention", false, "use the low-contention workload")
		quiet     = flag.Bool("quiet", false, "suppress the per-epoch table")
	)
	flag.Parse()

	app := workload.Default(*n)
	if *lowCont {
		app = workload.LowContention(*n)
	}
	dists := cluster.Dists{}
	if *cpuCV2 != 1 {
		dists.CPU = cluster.WithCV2(*cpuCV2)
	}
	if *remoteCV2 != 1 {
		dists.Remote = cluster.WithCV2(*remoteCV2)
	}

	var (
		net *network.Network
		err error
	)
	switch *arch {
	case "central":
		net, err = cluster.Central(*k, app, dists, cluster.Options{})
	case "distributed":
		net, err = cluster.Distributed(*k, app, dists)
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	solver, err := core.NewSolver(net, *k)
	if err != nil {
		fatal(err)
	}
	res, err := solver.Solve(*n)
	if err != nil {
		fatal(err)
	}
	rep, err := sim.Replicate(sim.Config{Net: net, K: *k, N: *n, Seed: *seed}, *reps)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s cluster: K=%d, N=%d, CPU C²=%v, storage C²=%v, %d reps\n\n",
		*arch, *k, *n, *cpuCV2, *remoteCV2, *reps)
	if !*quiet {
		fmt.Printf("%6s %12s %12s\n", "epoch", "analytic", "simulated")
		for i := range res.Epochs {
			fmt.Printf("%6d %12.4f %12.4f\n", i+1, res.Epochs[i], rep.MeanEpochs[i])
		}
		fmt.Println()
	}
	fmt.Printf("E(T) analytic:  %.4f\n", res.TotalTime)
	fmt.Printf("E(T) simulated: %.4f ± %.4f (95%% CI)\n", rep.MeanTotal, rep.TotalCI95)
	gap := math.Abs(res.TotalTime - rep.MeanTotal)
	fmt.Printf("gap: %.4f (%.2f CI half-widths)\n", gap, gap/rep.TotalCI95)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
