// Command clustersim runs the discrete-event simulator on a cluster
// configuration and compares it against the analytic transient model
// — per-epoch and in total, with confidence intervals.
//
// Usage:
//
//	clustersim -arch central -k 5 -n 30 -remote-cv2 10 -reps 5000
//	clustersim -arch distributed -k 3 -n 20 -cpu-cv2 0.5 -timeout 1m
//
// Exit status: 0 on success, 1 on a runtime failure, timeout or
// interrupt (Ctrl-C / SIGTERM cancels the solver context cleanly), 2
// on command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/obs"
	"finwl/internal/sim"
	"finwl/internal/workload"
)

type options struct {
	arch              string
	k, n, reps        int
	seed              int64
	cpuCV2, remoteCV2 float64
	lowCont, quiet    bool
}

func main() {
	var (
		opts    options
		timeout time.Duration
	)
	flag.StringVar(&opts.arch, "arch", "central", "central | distributed")
	flag.IntVar(&opts.k, "k", 5, "workstations")
	flag.IntVar(&opts.n, "n", 30, "tasks in the workload")
	flag.IntVar(&opts.reps, "reps", 4000, "simulation replications")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.Float64Var(&opts.cpuCV2, "cpu-cv2", 1, "CPU service C²")
	flag.Float64Var(&opts.remoteCV2, "remote-cv2", 1, "shared storage C²")
	flag.BoolVar(&opts.lowCont, "low-contention", false, "use the low-contention workload")
	flag.BoolVar(&opts.quiet, "quiet", false, "suppress the per-epoch table")
	flag.DurationVar(&timeout, "timeout", 0, "abort after this long (0 = no limit)")
	metricsAddr := cliutil.MetricsAddrFlag()
	flag.Parse()
	cliutil.Main("clustersim", timeout, func(ctx context.Context) error {
		admin, err := cliutil.StartAdmin(*metricsAddr, obs.Default)
		if err != nil {
			return err
		}
		defer admin.Close()
		return run(ctx, opts)
	})
}

func run(ctx context.Context, opts options) error {
	app := workload.Default(opts.n)
	if opts.lowCont {
		app = workload.LowContention(opts.n)
	}
	dists := cluster.Dists{}
	if opts.cpuCV2 != 1 {
		dists.CPU = cluster.WithCV2(opts.cpuCV2)
	}
	if opts.remoteCV2 != 1 {
		dists.Remote = cluster.WithCV2(opts.remoteCV2)
	}

	var (
		net *network.Network
		err error
	)
	switch opts.arch {
	case "central":
		net, err = cluster.Central(opts.k, app, dists, cluster.Options{})
	case "distributed":
		net, err = cluster.Distributed(opts.k, app, dists)
	default:
		return cliutil.Usagef("unknown arch %q", opts.arch)
	}
	if err != nil {
		return err
	}

	solver, err := core.NewSolverCtx(ctx, net, opts.k)
	if err != nil {
		return err
	}
	res, err := solver.SolveCtx(ctx, opts.n)
	if err != nil {
		return err
	}
	rep, err := sim.ReplicateCtx(ctx, sim.Config{Net: net, K: opts.k, N: opts.n, Seed: opts.seed}, opts.reps)
	if err != nil {
		return err
	}

	fmt.Printf("%s cluster: K=%d, N=%d, CPU C²=%v, storage C²=%v, %d reps\n\n",
		opts.arch, opts.k, opts.n, opts.cpuCV2, opts.remoteCV2, opts.reps)
	if !opts.quiet {
		fmt.Printf("%6s %12s %12s\n", "epoch", "analytic", "simulated")
		for i := range res.Epochs {
			fmt.Printf("%6d %12.4f %12.4f\n", i+1, res.Epochs[i], rep.MeanEpochs[i])
		}
		fmt.Println()
	}
	fmt.Printf("E(T) analytic:  %.4f\n", res.TotalTime)
	fmt.Printf("E(T) simulated: %.4f ± %.4f (95%% CI)\n", rep.MeanTotal, rep.TotalCI95)
	gap := math.Abs(res.TotalTime - rep.MeanTotal)
	fmt.Printf("gap: %.4f (%.2f CI half-widths)\n", gap, gap/rep.TotalCI95)
	return nil
}
