// Command finwl regenerates the paper's tables and figures from the
// analytic model and prints them as text tables.
//
// Usage:
//
//	finwl -list             list experiment ids
//	finwl -exp fig3         run one experiment
//	finwl -exp all          run every experiment in paper order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"finwl/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list   = flag.Bool("list", false, "list available experiments")
		format = flag.String("format", "text", "text | csv")
		out    = flag.String("o", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "finwl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "finwl: pass -exp <id> or -list")
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "finwl: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := runner()
		if err != nil {
			fmt.Fprintf(os.Stderr, "finwl: %s: %v\n", id, err)
			os.Exit(1)
		}
		var err2 error
		if *format == "csv" {
			err2 = renderCSV(w, table)
		} else {
			err2 = table.Render(w)
		}
		if err2 != nil {
			fmt.Fprintf(os.Stderr, "finwl: %s: render: %v\n", id, err2)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Fprintf(w, "   (%s computed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

// renderCSV writes the table as id,x,<series...> rows with a header.
func renderCSV(w io.Writer, t *experiments.Table) error {
	header := "id," + t.XLabel
	for _, s := range t.Series {
		header += "," + s.Label
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, x := range t.X {
		row := t.ID + "," + strconv.FormatFloat(x, 'g', -1, 64)
		for _, s := range t.Series {
			if i < len(s.Y) {
				row += "," + strconv.FormatFloat(s.Y[i], 'g', -1, 64)
			} else {
				row += ","
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
