// Command finwl regenerates the paper's tables and figures from the
// analytic model and prints them as text tables.
//
// Usage:
//
//	finwl -list             list experiment ids
//	finwl -exp fig3         run one experiment
//	finwl -exp all          run every experiment in paper order
//	finwl -exp all -timeout 2m
//
// Exit status: 0 on success, 1 on a runtime failure, timeout or
// interrupt (Ctrl-C / SIGTERM cancels the solver context cleanly), 2
// on command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		format  = flag.String("format", "text", "text | csv")
		out     = flag.String("o", "", "write output to this file instead of stdout")
		timeout = flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	)
	flag.Parse()
	cliutil.Main("finwl", *timeout, func(ctx context.Context) error {
		return run(ctx, *exp, *list, *format, *out)
	})
}

func run(ctx context.Context, exp string, list bool, format, out string) error {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return nil
	}
	if exp == "" {
		return cliutil.Usagef("pass -exp <id> or -list")
	}
	ids := []string{exp}
	if exp == "all" {
		ids = experiments.Order
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			return cliutil.Usagef("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		table, err := cliutil.Await(ctx, runner)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if format == "csv" {
			err = renderCSV(w, table)
		} else {
			err = table.Render(w)
		}
		if err != nil {
			return fmt.Errorf("%s: render: %w", id, err)
		}
		if format == "text" {
			fmt.Fprintf(w, "   (%s computed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// renderCSV writes the table as id,x,<series...> rows with a header.
func renderCSV(w io.Writer, t *experiments.Table) error {
	header := "id," + t.XLabel
	for _, s := range t.Series {
		header += "," + s.Label
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, x := range t.X {
		row := t.ID + "," + strconv.FormatFloat(x, 'g', -1, 64)
		for _, s := range t.Series {
			if i < len(s.Y) {
				row += "," + strconv.FormatFloat(s.Y[i], 'g', -1, 64)
			} else {
				row += ","
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
