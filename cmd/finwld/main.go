// Command finwld serves the finite-workload solver over HTTP with the
// full resilience stack from internal/serve: priced admission control,
// retry with backoff, per-model-class circuit breakers, a graceful-
// degradation ladder (exact → checkpoint → steady-state → bounds,
// every response tagged with its fidelity), a deduplicated result
// cache, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	finwld -addr 127.0.0.1:8080
//	curl -s -X POST -d '{"arch":"central","k":3,"n":10}' localhost:8080/solve
//	curl -s -X POST -d '[{"k":3,"n":10},{"k":3,"n":20}]' localhost:8080/batch
//	curl -s -X POST -d '[{"k":3,"n":10}]' localhost:8080/jobs   # then GET /jobs/{id}
//
// Endpoints: POST /solve, POST /batch (shared-chain batch solving),
// POST /jobs + GET /jobs/{id} (async batches with polled progress),
// GET /healthz, GET /stats, GET /metrics.
//
// Exit status: 0 after a graceful drain (SIGINT/SIGTERM stops
// admitting, cancels queued work, and finishes in-flight solves within
// -drain; a second signal hard-kills), 1 on a startup or serve
// failure, 2 on command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/obs"
	"finwl/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free port)")
		budget     = flag.Int64("budget", 0, "admission budget in state-space units (0 = default)")
		queue      = flag.Int("queue", 0, "max queued requests (0 = default)")
		cacheSize  = flag.Int("cache", 0, "result-cache entries (0 = default, <0 disables)")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on per-request deadlines (0 = default 60s)")
		cooldown   = flag.Duration("breaker-cooldown", 0, "circuit-breaker open → half-open delay (0 = default 5s)")
		maxBatch   = flag.Int("max-batch", 0, "max jobs in one /batch or /jobs submission (0 = default 256)")
		jobStore   = flag.Int("job-store", 0, "async job records held at once (0 = default 64)")
		jobTTL     = flag.Duration("job-ttl", 0, "retention of finished async job results (0 = default 10m)")
		asyncWk    = flag.Int("async-workers", 0, "concurrent async batch runs (0 = default 4)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown")
		metrics    = cliutil.MetricsAddrFlag()
		quiet      = flag.Bool("quiet", false, "disable per-request structured logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "finwld: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	cfg := serve.Config{
		Budget:          *budget,
		MaxQueue:        *queue,
		CacheSize:       *cacheSize,
		MaxTimeout:      *maxTimeout,
		BreakerCooldown: *cooldown,
		MaxBatchJobs:    *maxBatch,
		JobStoreSize:    *jobStore,
		JobTTL:          *jobTTL,
		AsyncWorkers:    *asyncWk,
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if err := run(*addr, *metrics, cfg, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, metricsAddr string, cfg serve.Config, drainTimeout time.Duration) error {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Admin listener: /metrics joins the server's own registry with the
	// process-wide solver-stage metrics. Nil when -metrics-addr is
	// unset; a nil Admin's Close is a no-op.
	admin, err := cliutil.StartAdmin(metricsAddr, srv.Metrics(), obs.Default)
	if err != nil {
		ln.Close()
		return err
	}
	defer admin.Close()
	if admin != nil {
		fmt.Printf("finwld admin listening on %s\n", admin.Addr())
	}

	// The startup line is the machine-readable handshake the CI smoke
	// test (and port-0 users) scrape for the bound address.
	fmt.Printf("finwld listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("finwld: %v received, draining (deadline %v)\n", s, drainTimeout)
		signal.Stop(sig) // a second signal kills the process
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first — stop admitting, cancel queued work, wait for
	// in-flight solves — then close the listener and idle connections.
	// A busted drain deadline force-cancels in-flight work; that is
	// still an orderly exit, so it stays exit 0.
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Printf("finwld: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Println("finwld: drained, exiting")
	return nil
}
