// Command finwld serves the finite-workload solver over HTTP with the
// full resilience stack from internal/serve: priced admission control,
// retry with backoff, per-model-class circuit breakers, a graceful-
// degradation ladder (exact → checkpoint → steady-state → bounds,
// every response tagged with its fidelity), a deduplicated result
// cache, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	finwld -addr 127.0.0.1:8080
//	curl -s -X POST -d '{"arch":"central","k":3,"n":10}' localhost:8080/solve
//	curl -s -X POST -d '[{"k":3,"n":10},{"k":3,"n":20}]' localhost:8080/batch
//	curl -s -X POST -d '[{"k":3,"n":10}]' localhost:8080/jobs   # then GET /jobs/{id}
//	curl -s -X POST -d '{"arch":"central","k":3,"job_tasks":4,"jobs":3,"arrival":{"process":"poisson","mean":2},"probes":[1,5]}' localhost:8080/stream
//
// Endpoints: POST /solve, POST /batch (shared-chain batch solving),
// POST /jobs + GET /jobs/{id} (async batches with polled progress),
// POST /stream (job streams: finite workloads arriving by a renewal
// process, or a closed finite customer pool with think times — exact
// transient mean tasks-in-system, mean drain time and drain CDF),
// GET /healthz, GET /stats, GET /metrics.
//
// Durability: -journal DIR appends every async-job transition to an
// append-only JSONL journal, so a crash-restart over the same
// directory re-enqueues unfinished batches, keeps finished results
// fetchable under their old IDs, and replays Idempotency-Keys to the
// same job. -fsync picks the always/interval/never tradeoff. A corrupt
// journal refuses to boot (exit 1): repair or remove it explicitly.
//
// Fleet mode: -router turns this process into a health-aware router
// over a comma-separated list of replica finwld URLs — each request
// consistent-hashes to the replica whose caches are warm for its
// model, with failover along the ring and load-aware spillover:
//
//	finwld -addr 127.0.0.1:8081 &
//	finwld -addr 127.0.0.1:8082 &
//	finwld -addr 127.0.0.1:8080 -router http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Replay mode: -replay turns the binary into a load driver instead of
// a server. The argument is either a workload spec (YAML/JSON, see
// internal/spec) or a recorded trace (JSONL); a spec expands into a
// deterministic seeded trace first. The trace fires at -target with
// open-loop pacing and the run ends with a per-class SLO-attainment
// report:
//
//	finwld -replay examples/spec-mixed.yaml -target http://127.0.0.1:8080
//	finwld -replay spec.yaml -record trace.jsonl            # record only
//	finwld -replay trace.jsonl -target URL -report out.json -gate
//
// Exit status: 0 after a graceful drain (SIGINT/SIGTERM stops
// admitting, cancels queued work, and finishes in-flight solves within
// -drain; a second signal hard-kills) or a completed replay, 1 on a
// startup/serve/replay failure (including a missed SLO under -gate),
// 2 on command-line misuse.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/fleet"
	"finwl/internal/obs"
	"finwl/internal/serve"
	"finwl/internal/spec"
	"finwl/internal/trace"
)

// service is what run needs from either mode: the embedded solver
// (*serve.Server) or the fleet router (*fleet.Router).
type service interface {
	Handler() http.Handler
	Metrics() *obs.Registry
	Drain(ctx context.Context) error
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free port)")
		budget     = flag.Int64("budget", 0, "admission budget in state-space units (0 = default)")
		queue      = flag.Int("queue", 0, "max queued requests (0 = default)")
		cacheSize  = flag.Int("cache", 0, "result-cache entries (0 = default, <0 disables)")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on per-request deadlines (0 = default 60s)")
		cooldown   = flag.Duration("breaker-cooldown", 0, "circuit-breaker open → half-open delay (0 = default 5s)")
		maxBatch   = flag.Int("max-batch", 0, "max jobs in one /batch or /jobs submission (0 = default 256)")
		jobStore   = flag.Int("job-store", 0, "async job records held at once (0 = default 64)")
		jobTTL     = flag.Duration("job-ttl", 0, "retention of finished async job results (0 = default 10m)")
		asyncWk    = flag.Int("async-workers", 0, "concurrent async batch runs (0 = default 4)")
		journalDir = flag.String("journal", "", "durability journal directory; async jobs survive a crash-restart (empty = in-memory only)")
		fsync      = flag.String("fsync", "", "journal fsync policy: always|interval|never (default interval)")
		replicaID  = flag.String("replica-id", "", "stable job-ID prefix for fleet routing (default: generated and persisted in the journal dir)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown")
		metrics    = cliutil.MetricsAddrFlag()
		quiet      = flag.Bool("quiet", false, "disable per-request structured logging")

		// Fleet-router mode.
		router        = flag.String("router", "", "comma-separated replica URLs; turns this instance into a fleet router")
		probeInterval = flag.Duration("probe-interval", 0, "router: replica health-probe interval (0 = default 2s)")
		spillFactor   = flag.Float64("spill-factor", 0, "router: weighted-load ratio that diverts off a saturated owner (0 = default 2.0, <0 disables)")
		spillDepth    = flag.Int("spill-depth", 0, "router: owner outstanding depth before spillover is considered (0 = default 4)")

		// Replay (load-driver) mode.
		replay     = flag.String("replay", "", "workload spec (YAML/JSON) or recorded trace (JSONL) to replay; turns this process into a load driver")
		target     = flag.String("target", "", "replay: base URL of the finwld (or fleet router) to drive")
		record     = flag.String("record", "", "replay: write the expanded event trace as JSONL to this path (without -target: record only)")
		reportPath = flag.String("report", "", "replay: write the machine-readable SLO report as JSON to this path")
		gate       = flag.Bool("gate", false, "replay: exit 1 unless every class meets its SLO target and zero untyped 5xx were observed")
		timeScale  = flag.Float64("time-scale", 1, "replay: multiply recorded arrival offsets (0.5 replays twice as fast)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "finwld: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *replay != "" {
		os.Exit(replayMain(*replay, *target, *record, *reportPath, *gate, *timeScale))
	}
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	var svc service
	if *router != "" {
		rt, err := fleet.New(fleet.Config{
			Replicas:      strings.Split(*router, ","),
			ProbeInterval: *probeInterval,
			SpillFactor:   *spillFactor,
			SpillDepth:    *spillDepth,
			MaxTimeout:    *maxTimeout,
			MaxBatchJobs:  *maxBatch,
			JournalDir:    *journalDir,
			Fsync:         *fsync,
			Logger:        logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
			os.Exit(2)
		}
		svc = rt
	} else {
		// NewRecovered (not New): a corrupt journal must refuse to boot
		// rather than silently shed durability — the operator decides
		// whether to repair or discard it.
		s, err := serve.NewRecovered(serve.Config{
			Budget:          *budget,
			MaxQueue:        *queue,
			CacheSize:       *cacheSize,
			MaxTimeout:      *maxTimeout,
			BreakerCooldown: *cooldown,
			MaxBatchJobs:    *maxBatch,
			JobStoreSize:    *jobStore,
			JobTTL:          *jobTTL,
			AsyncWorkers:    *asyncWk,
			JournalDir:      *journalDir,
			Fsync:           *fsync,
			ReplicaID:       *replicaID,
			Logger:          logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
			os.Exit(1)
		}
		svc = s
	}
	if err := run(*addr, *metrics, svc, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, metricsAddr string, srv service, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Admin listener: /metrics joins the server's own registry with the
	// process-wide solver-stage metrics. Nil when -metrics-addr is
	// unset; a nil Admin's Close is a no-op.
	admin, err := cliutil.StartAdmin(metricsAddr, srv.Metrics(), obs.Default)
	if err != nil {
		ln.Close()
		return err
	}
	defer admin.Close()
	if admin != nil {
		fmt.Printf("finwld admin listening on %s\n", admin.Addr())
	}

	// The startup line is the machine-readable handshake the CI smoke
	// test (and port-0 users) scrape for the bound address.
	fmt.Printf("finwld listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("finwld: %v received, draining (deadline %v)\n", s, drainTimeout)
		signal.Stop(sig) // a second signal kills the process
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first — stop admitting, cancel queued work, wait for
	// in-flight solves — then close the listener and idle connections.
	// A busted drain deadline force-cancels in-flight work; that is
	// still an orderly exit, so it stays exit 0.
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Printf("finwld: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Println("finwld: drained, exiting")
	return nil
}

// replayMain is the -replay entry point: load a spec or recorded
// trace, optionally record the expanded trace, drive it at -target,
// and write/print the SLO report. Returns the process exit code.
func replayMain(path, target, record, reportPath string, gate bool, timeScale float64) int {
	if target == "" && record == "" {
		fmt.Fprintln(os.Stderr, "finwld: -replay needs -target (to drive) or -record (to record the trace)")
		return 2
	}
	if timeScale < 0 {
		fmt.Fprintf(os.Stderr, "finwld: -time-scale %v, want >= 0\n", timeScale)
		return 2
	}
	tr, err := loadTrace(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
		return 1
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
			return 1
		}
		err = tr.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "finwld: record %s: %v\n", record, err)
			return 1
		}
		fmt.Printf("finwld: recorded %d events (%d requests) to %s\n",
			len(tr.Events), tr.Header.Requests, record)
	}
	if target == "" {
		return 0
	}

	// SIGINT/SIGTERM cancels the drive; outcomes collected so far are
	// discarded (a partial replay cannot be scored against the SLO).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := trace.Drive(ctx, tr, target, trace.DriveOptions{TimeScale: timeScale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "finwld: replay: %v\n", err)
		return 1
	}
	fmt.Print(rep.Summary())
	if reportPath != "" {
		var w *os.File
		if reportPath == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(reportPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "finwld: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteReport(w); err != nil {
			fmt.Fprintf(os.Stderr, "finwld: report: %v\n", err)
			return 1
		}
	}
	if gate && (!rep.SLOMet || rep.Untyped5xx > 0) {
		fmt.Fprintf(os.Stderr, "finwld: SLO gate failed (met=%v, untyped 5xx=%d)\n",
			rep.SLOMet, rep.Untyped5xx)
		return 1
	}
	return 0
}

// loadTrace reads path as a recorded trace (sniffed by the JSONL
// header) or a workload spec expanded through the generator.
func loadTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if trace.IsTrace(data) {
		return trace.ReadJSONL(bytes.NewReader(data))
	}
	s, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	return trace.Generate(s)
}
