package main

import (
	"bufio"
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"finwl/internal/serve"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed. The CSV writer prints straight to stdout,
// so the remote path is tested through the same surface users see.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestSweepRemoteNSweep drives an N-sweep through a real in-process
// finwld handler: one POST /batch, every row full fidelity, and the
// server's batch counters confirm the points shared a single group.
func TestSweepRemoteNSweep(t *testing.T) {
	s := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opts := options{
		variable: "n", arch: "central", k: 3, n: 10,
		from: 10, to: 30, steps: 3, server: ts.URL,
	}
	xs := []float64{10, 20, 30}
	out, err := captureStdout(t, func() error {
		return sweepRemote(context.Background(), xs, opts)
	})
	if err != nil {
		t.Fatalf("sweepRemote: %v", err)
	}

	var rows []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if sc.Text() != "" {
			rows = append(rows, sc.Text())
		}
	}
	if len(rows) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(rows), out)
	}
	if rows[0] != "x,total_time,speedup,fidelity,epochs,solve_ms" {
		t.Fatalf("header = %q", rows[0])
	}
	for _, row := range rows[1:] {
		f := strings.Split(row, ",")
		if len(f) != 6 {
			t.Fatalf("row %q has %d fields, want 6", row, len(f))
		}
		if f[3] != "exact" && f[3] != "checkpoint" {
			t.Errorf("row %q fidelity = %q, want exact or checkpoint", row, f[3])
		}
	}

	st := s.Snapshot()
	if st.BatchJobs != 3 || st.BatchGroups != 1 || st.BatchChainReuse != 2 {
		t.Fatalf("batch stats = jobs %d, groups %d, reuse %d; want 3, 1, 2",
			st.BatchJobs, st.BatchGroups, st.BatchChainReuse)
	}
}

// TestSweepRemotePartialFailure: a k-sweep whose first point is k=0 is
// rejected per-job server-side; the healthy rows still print and the
// command reports the failure.
func TestSweepRemotePartialFailure(t *testing.T) {
	s := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opts := options{
		variable: "k", arch: "central", k: 3, n: 10, server: ts.URL,
	}
	xs := []float64{0, 2, 3}
	out, err := captureStdout(t, func() error {
		return sweepRemote(context.Background(), xs, opts)
	})
	if err == nil {
		t.Fatal("sweepRemote with an invalid point succeeded")
	}
	if !strings.Contains(err.Error(), "1 of 3 remote jobs failed") {
		t.Fatalf("error does not report the failed count: %v", err)
	}
	if !strings.Contains(err.Error(), "invalid_model") {
		t.Fatalf("error does not carry the typed code: %v", err)
	}
	if got := strings.Count(out, "\n"); got != 3 { // header + 2 healthy rows
		t.Fatalf("printed %d lines, want 3:\n%s", got, out)
	}
}

// TestSweepRemoteServerError: a whole-batch rejection (undecodable URL
// / connection refused here) surfaces as a command error, not a panic.
func TestSweepRemoteServerError(t *testing.T) {
	opts := options{variable: "n", arch: "central", k: 3, n: 10,
		server: "http://127.0.0.1:1"}
	_, err := captureStdout(t, func() error {
		return sweepRemote(context.Background(), []float64{10}, opts)
	})
	if err == nil {
		t.Fatal("sweepRemote against a dead server succeeded")
	}
}
