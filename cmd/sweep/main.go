// Command sweep runs parameter sweeps over the transient model and
// emits CSV, for plotting or regression tracking.
//
// The swept variable is one of: k, n, cv2 (of a chosen component),
// cycles, remotefrac. Every other parameter is fixed by flags.
//
// Usage:
//
//	sweep -var cv2 -component remote -from 1 -to 100 -steps 12 -k 8 -n 30
//	sweep -var k -from 1 -to 10 -steps 10 -n 100 -low-contention > speedup.csv
//	sweep -var n -from 10 -to 200 -steps 10 -k 5
package main

import (
	"flag"
	"fmt"
	"os"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/workload"
)

func main() {
	var (
		variable  = flag.String("var", "cv2", "k | n | cv2 | cycles | remotefrac")
		component = flag.String("component", "remote", "cpu | remote (for -var cv2)")
		arch      = flag.String("arch", "central", "central | distributed")
		from      = flag.Float64("from", 1, "sweep start")
		to        = flag.Float64("to", 10, "sweep end")
		steps     = flag.Int("steps", 10, "number of sweep points")
		k         = flag.Int("k", 5, "workstations")
		n         = flag.Int("n", 30, "tasks")
		lowCont   = flag.Bool("low-contention", false, "use the low-contention workload")
	)
	flag.Parse()
	if *steps < 1 {
		fatal(fmt.Errorf("steps must be >= 1"))
	}

	xs := make([]float64, *steps)
	for i := range xs {
		xs[i] = *from
		if *steps > 1 {
			xs[i] += (*to - *from) * float64(i) / float64(*steps-1)
		}
	}

	fmt.Println("x,total_time,speedup,tss,first_epoch,last_epoch")

	if *variable == "n" {
		// The network is independent of N: build one solver, factor it
		// once, and evaluate every workload size in a single SolveSweep
		// feeding pass with checkpointed drains.
		sweepN(xs, *arch, *k, *lowCont)
		return
	}

	for i := 0; i < *steps; i++ {
		x := xs[i]
		app := workload.Default(*n)
		if *lowCont {
			app = workload.LowContention(*n)
		}
		kk, nn := *k, *n
		dists := cluster.Dists{}
		switch *variable {
		case "k":
			kk = int(x + 0.5)
		case "cv2":
			if *component == "cpu" {
				dists.CPU = cluster.WithCV2(x)
			} else {
				dists.Remote = cluster.WithCV2(x)
			}
		case "cycles":
			app.Cycles = x
		case "remotefrac":
			app.RemoteFrac = x
		default:
			fatal(fmt.Errorf("unknown sweep variable %q", *variable))
		}

		var (
			net *network.Network
			err error
		)
		if *arch == "central" {
			net, err = cluster.Central(kk, app, dists, cluster.Options{})
		} else {
			net, err = cluster.Distributed(kk, app, dists)
		}
		if err != nil {
			fatal(err)
		}
		s, err := core.NewSolver(net, kk)
		if err != nil {
			fatal(err)
		}
		res, err := s.Solve(nn)
		if err != nil {
			fatal(err)
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%g,%g,%g,%g,%g,%g\n",
			x, res.TotalTime, app.SerialTime()/res.TotalTime, tss,
			res.Epochs[0], res.Epochs[len(res.Epochs)-1])
	}
}

// sweepN prints the CSV rows of an N-sweep using one solver and one
// incremental SolveSweep pass over every requested workload size.
func sweepN(xs []float64, arch string, k int, lowCont bool) {
	mkApp := workload.Default
	if lowCont {
		mkApp = workload.LowContention
	}
	ns := make([]int, len(xs))
	for i, x := range xs {
		ns[i] = int(x + 0.5)
	}
	app := mkApp(ns[0])
	var (
		net *network.Network
		err error
	)
	if arch == "central" {
		net, err = cluster.Central(k, app, cluster.Dists{}, cluster.Options{})
	} else {
		net, err = cluster.Distributed(k, app, cluster.Dists{})
	}
	if err != nil {
		fatal(err)
	}
	s, err := core.NewSolver(net, k)
	if err != nil {
		fatal(err)
	}
	results, err := s.SolveSweep(ns)
	if err != nil {
		fatal(err)
	}
	_, tss, err := s.SteadyState()
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		fmt.Printf("%g,%g,%g,%g,%g,%g\n",
			xs[i], res.TotalTime, mkApp(ns[i]).SerialTime()/res.TotalTime, tss,
			res.Epochs[0], res.Epochs[len(res.Epochs)-1])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
