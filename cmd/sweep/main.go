// Command sweep runs parameter sweeps over the transient model and
// emits CSV, for plotting or regression tracking.
//
// The swept variable is one of: k, n, cv2 (of a chosen component),
// cycles, remotefrac. Every other parameter is fixed by flags.
//
// Usage:
//
//	sweep -var cv2 -component remote -from 1 -to 100 -steps 12 -k 8 -n 30
//	sweep -var k -from 1 -to 10 -steps 10 -n 100 -low-contention > speedup.csv
//	sweep -var n -from 10 -to 200 -steps 10 -k 5
package main

import (
	"flag"
	"fmt"
	"os"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/workload"
)

func main() {
	var (
		variable  = flag.String("var", "cv2", "k | n | cv2 | cycles | remotefrac")
		component = flag.String("component", "remote", "cpu | remote (for -var cv2)")
		arch      = flag.String("arch", "central", "central | distributed")
		from      = flag.Float64("from", 1, "sweep start")
		to        = flag.Float64("to", 10, "sweep end")
		steps     = flag.Int("steps", 10, "number of sweep points")
		k         = flag.Int("k", 5, "workstations")
		n         = flag.Int("n", 30, "tasks")
		lowCont   = flag.Bool("low-contention", false, "use the low-contention workload")
	)
	flag.Parse()
	if *steps < 1 {
		fatal(fmt.Errorf("steps must be >= 1"))
	}

	fmt.Println("x,total_time,speedup,tss,first_epoch,last_epoch")
	for i := 0; i < *steps; i++ {
		x := *from
		if *steps > 1 {
			x += (*to - *from) * float64(i) / float64(*steps-1)
		}
		app := workload.Default(*n)
		if *lowCont {
			app = workload.LowContention(*n)
		}
		kk, nn := *k, *n
		dists := cluster.Dists{}
		switch *variable {
		case "k":
			kk = int(x + 0.5)
		case "n":
			nn = int(x + 0.5)
			app.N = nn
		case "cv2":
			if *component == "cpu" {
				dists.CPU = cluster.WithCV2(x)
			} else {
				dists.Remote = cluster.WithCV2(x)
			}
		case "cycles":
			app.Cycles = x
		case "remotefrac":
			app.RemoteFrac = x
		default:
			fatal(fmt.Errorf("unknown sweep variable %q", *variable))
		}

		var (
			net *network.Network
			err error
		)
		if *arch == "central" {
			net, err = cluster.Central(kk, app, dists, cluster.Options{})
		} else {
			net, err = cluster.Distributed(kk, app, dists)
		}
		if err != nil {
			fatal(err)
		}
		s, err := core.NewSolver(net, kk)
		if err != nil {
			fatal(err)
		}
		res, err := s.Solve(nn)
		if err != nil {
			fatal(err)
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%g,%g,%g,%g,%g,%g\n",
			x, res.TotalTime, app.SerialTime()/res.TotalTime, tss,
			res.Epochs[0], res.Epochs[len(res.Epochs)-1])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
