// Command sweep runs parameter sweeps over the transient model and
// emits CSV, for plotting or regression tracking.
//
// The swept variable is one of: k, n, cv2 (of a chosen component),
// cycles, remotefrac. Every other parameter is fixed by flags.
//
// Usage:
//
//	sweep -var cv2 -component remote -from 1 -to 100 -steps 12 -k 8 -n 30
//	sweep -var k -from 1 -to 10 -steps 10 -n 100 -low-contention > speedup.csv
//	sweep -var n -from 10 -to 200 -steps 10 -k 5 -timeout 30s
//	sweep -var n -from 10 -to 200 -steps 10 -k 5 -server http://localhost:8080
//
// With -server the sweep is not solved in-process: every point becomes
// one job in a single POST /batch to a running finwld, whose scheduler
// groups the jobs by network — an N-sweep is one chain build and one
// sweep server-side. The remote CSV replaces the local-only columns
// (steady-state, epoch endpoints) with the response's fidelity tag and
// server-side solve time.
//
// Exit status: 0 on success, 1 on a runtime failure, timeout or
// interrupt (Ctrl-C / SIGTERM cancels the solver context cleanly), 2
// on command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/obs"
	"finwl/internal/serve"
	"finwl/internal/workload"
)

type options struct {
	variable  string
	component string
	arch      string
	from, to  float64
	steps     int
	k, n      int
	lowCont   bool
	server    string
}

func main() {
	var (
		opts    options
		timeout time.Duration
	)
	flag.StringVar(&opts.variable, "var", "cv2", "k | n | cv2 | cycles | remotefrac")
	flag.StringVar(&opts.component, "component", "remote", "cpu | remote (for -var cv2)")
	flag.StringVar(&opts.arch, "arch", "central", "central | distributed")
	flag.Float64Var(&opts.from, "from", 1, "sweep start")
	flag.Float64Var(&opts.to, "to", 10, "sweep end")
	flag.IntVar(&opts.steps, "steps", 10, "number of sweep points")
	flag.IntVar(&opts.k, "k", 5, "workstations")
	flag.IntVar(&opts.n, "n", 30, "tasks")
	flag.BoolVar(&opts.lowCont, "low-contention", false, "use the low-contention workload")
	flag.StringVar(&opts.server, "server", "", "finwld base URL: solve the sweep remotely via POST /batch")
	flag.DurationVar(&timeout, "timeout", 0, "abort after this long (0 = no limit)")
	metricsAddr := cliutil.MetricsAddrFlag()
	flag.Parse()
	cliutil.Main("sweep", timeout, func(ctx context.Context) error {
		admin, err := cliutil.StartAdmin(*metricsAddr, obs.Default)
		if err != nil {
			return err
		}
		defer admin.Close()
		return run(ctx, opts)
	})
}

func run(ctx context.Context, opts options) error {
	if opts.steps < 1 {
		return cliutil.Usagef("steps must be >= 1, got %d", opts.steps)
	}
	xs := make([]float64, opts.steps)
	for i := range xs {
		xs[i] = opts.from
		if opts.steps > 1 {
			xs[i] += (opts.to - opts.from) * float64(i) / float64(opts.steps-1)
		}
	}

	if opts.server != "" {
		return sweepRemote(ctx, xs, opts)
	}

	fmt.Println("x,total_time,speedup,tss,first_epoch,last_epoch")

	if opts.variable == "n" {
		// The network is independent of N: build one solver, factor it
		// once, and evaluate every workload size in a single SolveSweep
		// feeding pass with checkpointed drains.
		return sweepN(ctx, xs, opts.arch, opts.k, opts.lowCont)
	}

	for i := 0; i < opts.steps; i++ {
		x := xs[i]
		app := workload.Default(opts.n)
		if opts.lowCont {
			app = workload.LowContention(opts.n)
		}
		kk, nn := opts.k, opts.n
		dists := cluster.Dists{}
		switch opts.variable {
		case "k":
			kk = int(x + 0.5)
		case "cv2":
			if opts.component == "cpu" {
				dists.CPU = cluster.WithCV2(x)
			} else {
				dists.Remote = cluster.WithCV2(x)
			}
		case "cycles":
			app.Cycles = x
		case "remotefrac":
			app.RemoteFrac = x
		default:
			return cliutil.Usagef("unknown sweep variable %q", opts.variable)
		}

		net, err := buildNet(opts.arch, kk, app, dists)
		if err != nil {
			return err
		}
		s, err := core.NewSolverCtx(ctx, net, kk)
		if err != nil {
			return err
		}
		res, err := s.SolveCtx(ctx, nn)
		if err != nil {
			return err
		}
		_, tss, err := s.SteadyStateCtx(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%g,%g,%g,%g,%g,%g\n",
			x, res.TotalTime, app.SerialTime()/res.TotalTime, tss,
			res.Epochs[0], res.Epochs[len(res.Epochs)-1])
	}
	return nil
}

func buildNet(arch string, k int, app workload.App, dists cluster.Dists) (*network.Network, error) {
	switch arch {
	case "central":
		return cluster.Central(k, app, dists, cluster.Options{})
	case "distributed":
		return cluster.Distributed(k, app, dists)
	default:
		return nil, cliutil.Usagef("unknown arch %q", arch)
	}
}

// appSpec pins every workload field in the wire form so the server
// solves exactly the app the local mode would have built.
func appSpec(app workload.App) *serve.AppSpec {
	return &serve.AppSpec{
		X: &app.X, C: &app.C, Y: &app.Y, B: &app.B,
		Cycles: &app.Cycles, RemoteFrac: &app.RemoteFrac,
	}
}

// sweepRemote expresses each sweep point as one cluster-form request
// and submits them all in a single POST /batch. Points sharing a
// network (always true for -var n) share one chain build server-side.
// Speedup is still computed locally from the workload's serial time;
// per-job failures are reported together after the successful rows.
func sweepRemote(ctx context.Context, xs []float64, opts options) error {
	reqs := make([]*serve.Request, len(xs))
	apps := make([]workload.App, len(xs))
	for i, x := range xs {
		app := workload.Default(opts.n)
		if opts.lowCont {
			app = workload.LowContention(opts.n)
		}
		kk, nn := opts.k, opts.n
		var cv2 *serve.CV2Spec
		switch opts.variable {
		case "k":
			kk = int(x + 0.5)
		case "n":
			nn = int(x + 0.5)
			app.N = nn
		case "cv2":
			cv2 = &serve.CV2Spec{}
			if opts.component == "cpu" {
				cv2.CPU = x
			} else {
				cv2.Remote = x
			}
		case "cycles":
			app.Cycles = x
		case "remotefrac":
			app.RemoteFrac = x
		default:
			return cliutil.Usagef("unknown sweep variable %q", opts.variable)
		}
		apps[i] = app
		reqs[i] = &serve.Request{Arch: opts.arch, K: kk, N: nn, App: appSpec(app), CV2: cv2}
	}

	var items []serve.BatchItem
	url := strings.TrimSuffix(opts.server, "/") + "/batch"
	if _, err := cliutil.PostJSON(ctx, nil, url, reqs, &items); err != nil {
		return err
	}
	if len(items) != len(reqs) {
		return fmt.Errorf("sweep: server returned %d items for %d jobs", len(items), len(reqs))
	}

	fmt.Println("x,total_time,speedup,fidelity,epochs,solve_ms")
	var failed []string
	for i, it := range items {
		if it.Response == nil {
			failed = append(failed, fmt.Sprintf("x=%g: %s (%s)", xs[i], it.Error, it.Code))
			continue
		}
		r := it.Response
		fmt.Printf("%g,%g,%g,%s,%d,%g\n",
			xs[i], r.TotalTime, apps[i].SerialTime()/r.TotalTime, r.Fidelity, r.Epochs, r.ElapsedMS)
	}
	if len(failed) > 0 {
		return fmt.Errorf("sweep: %d of %d remote jobs failed:\n  %s",
			len(failed), len(items), strings.Join(failed, "\n  "))
	}
	return nil
}

// sweepN prints the CSV rows of an N-sweep using one solver and one
// incremental SolveSweep pass over every requested workload size.
func sweepN(ctx context.Context, xs []float64, arch string, k int, lowCont bool) error {
	mkApp := workload.Default
	if lowCont {
		mkApp = workload.LowContention
	}
	ns := make([]int, len(xs))
	for i, x := range xs {
		ns[i] = int(x + 0.5)
	}
	net, err := buildNet(arch, k, mkApp(ns[0]), cluster.Dists{})
	if err != nil {
		return err
	}
	s, err := core.NewSolverCtx(ctx, net, k)
	if err != nil {
		return err
	}
	results, err := s.SolveSweepCtx(ctx, ns)
	if err != nil {
		return err
	}
	_, tss, err := s.SteadyStateCtx(ctx)
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Printf("%g,%g,%g,%g,%g,%g\n",
			xs[i], res.TotalTime, mkApp(ns[i]).SerialTime()/res.TotalTime, tss,
			res.Epochs[0], res.Epochs[len(res.Epochs)-1])
	}
	return nil
}
