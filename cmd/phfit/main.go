// Command phfit fits phase-type distributions and reports their LAQT
// representation <p, B>, moments and distribution function — a
// workbench for choosing the service laws fed into the cluster
// models.
//
// Usage:
//
//	phfit -family h2 -mean 12 -cv2 10
//	phfit -family erlang -mean 12 -stages 3
//	phfit -family tpt -mean 12 -alpha 1.4 -stages 10
//	phfit -family coxian -mean 12 -cv2 0.7
//	phfit -family h2 -mean 12 -cv2 10 -f0 0.5     (pdf(0)-fit, §5.4.2)
//	phfit -fit-csv trace.csv -branches 3          (EM fit from a trace)
//
// Exit status: 0 on success, 1 on a runtime failure, timeout or
// interrupt (Ctrl-C / SIGTERM cancels the solver context cleanly), 2
// on command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"finwl/internal/cliutil"
	"finwl/internal/phase"
	"finwl/internal/trace"
)

type options struct {
	family string
	mean   float64
	cv2    float64
	stages int
	alpha  float64
	f0     float64
	grid   int
	fitCSV string
	branch int
}

func main() {
	var (
		opts    options
		timeout time.Duration
	)
	flag.StringVar(&opts.family, "family", "h2", "exp | erlang | h2 | coxian | tpt")
	flag.Float64Var(&opts.mean, "mean", 1, "target mean")
	flag.Float64Var(&opts.cv2, "cv2", 2, "target squared coefficient of variation")
	flag.IntVar(&opts.stages, "stages", 2, "stage/branch count (erlang, tpt)")
	flag.Float64Var(&opts.alpha, "alpha", 1.4, "tail exponent (tpt)")
	flag.Float64Var(&opts.f0, "f0", 0, "pdf at 0 for the three-parameter H2 fit (0 = balanced means)")
	flag.IntVar(&opts.grid, "grid", 8, "points of the distribution function to print")
	flag.StringVar(&opts.fitCSV, "fit-csv", "", "EM-fit a hyperexponential to the one-column CSV trace in this file")
	flag.IntVar(&opts.branch, "branches", 2, "EM branches with -fit-csv")
	flag.DurationVar(&timeout, "timeout", 0, "abort after this long (0 = no limit)")
	flag.Parse()
	cliutil.Main("phfit", timeout, func(ctx context.Context) error {
		return run(ctx, opts)
	})
}

func run(ctx context.Context, opts options) error {
	if opts.fitCSV != "" {
		return fitFromTrace(ctx, opts.fitCSV, opts.branch, opts.grid)
	}

	d, err := cliutil.Await(ctx, func() (*phase.PH, error) {
		switch opts.family {
		case "exp":
			return phase.ExpoMean(opts.mean)
		case "erlang":
			return phase.ErlangMean(opts.stages, opts.mean)
		case "h2":
			if opts.f0 > 0 {
				return phase.HyperExpFitPDF0(opts.mean, opts.cv2, opts.f0)
			}
			return phase.HyperExpFit(opts.mean, opts.cv2)
		case "coxian":
			return phase.Coxian2(opts.mean, opts.cv2)
		case "tpt":
			return phase.TPT(opts.stages, opts.alpha, opts.mean)
		default:
			return nil, cliutil.Usagef("unknown family %q", opts.family)
		}
	})
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("fit produced an invalid distribution: %w", err)
	}

	fmt.Println(d)
	fmt.Printf("  moments: E[T]=%.6g  E[T²]=%.6g  E[T³]=%.6g\n", d.Moment(1), d.Moment(2), d.Moment(3))
	fmt.Printf("  Var=%.6g  C²=%.6g  pdf(0)=%.6g\n\n", d.Variance(), d.CV2(), d.PDF0())

	fmt.Println("  entry vector p:", fmtVec(d.Alpha))
	fmt.Println("  rates µ:       ", fmtVec(d.Rates))
	fmt.Println("  B = M(I−P):")
	fmt.Print(indent(d.B().String()))

	fmt.Println("\n  t, F(t), R(t):")
	for i := 1; i <= opts.grid; i++ {
		t := d.Mean() * float64(i) / 2
		fmt.Printf("  %8.4g  %8.6f  %8.6f\n", t, d.CDF(t), d.Reliability(t))
	}
	return nil
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.6g", x)
	}
	return out + "]"
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

// fitFromTrace EM-fits a hyperexponential to a CSV trace and reports
// both the trace summary and the fitted law.
func fitFromTrace(ctx context.Context, path string, branches, grid int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	sum, err := trace.Summarize(samples)
	if err != nil {
		return err
	}
	fmt.Printf("trace: n=%d mean=%.6g C²=%.6g median=%.6g p99=%.6g max=%.6g\n",
		sum.N, sum.Mean, sum.CV2, sum.Median, sum.P99, sum.Max)
	res, err := cliutil.Await(ctx, func() (*phase.EMResult, error) {
		return phase.FitHyperEM(samples, branches, 1000, 1e-10)
	})
	if err != nil {
		return err
	}
	fmt.Printf("EM: %d iterations, converged=%v, logL=%.4f\n\n", res.Iterations, res.Converged, res.LogLikelihood)
	d := res.Dist
	fmt.Println(d)
	fmt.Println("  branch probs:", fmtVec(d.Alpha))
	fmt.Println("  branch rates:", fmtVec(d.Rates))
	fmt.Println("\n  t, F(t), R(t):")
	for i := 1; i <= grid; i++ {
		t := d.Mean() * float64(i) / 2
		fmt.Printf("  %8.4g  %8.6f  %8.6f\n", t, d.CDF(t), d.Reliability(t))
	}
	return nil
}
