// Command phfit fits phase-type distributions and reports their LAQT
// representation <p, B>, moments and distribution function — a
// workbench for choosing the service laws fed into the cluster
// models.
//
// Usage:
//
//	phfit -family h2 -mean 12 -cv2 10
//	phfit -family erlang -mean 12 -stages 3
//	phfit -family tpt -mean 12 -alpha 1.4 -stages 10
//	phfit -family coxian -mean 12 -cv2 0.7
//	phfit -family h2 -mean 12 -cv2 10 -f0 0.5     (pdf(0)-fit, §5.4.2)
//	phfit -fit-csv trace.csv -branches 3          (EM fit from a trace)
package main

import (
	"flag"
	"fmt"
	"os"

	"finwl/internal/phase"
	"finwl/internal/trace"
)

func main() {
	var (
		family = flag.String("family", "h2", "exp | erlang | h2 | coxian | tpt")
		mean   = flag.Float64("mean", 1, "target mean")
		cv2    = flag.Float64("cv2", 2, "target squared coefficient of variation")
		stages = flag.Int("stages", 2, "stage/branch count (erlang, tpt)")
		alpha  = flag.Float64("alpha", 1.4, "tail exponent (tpt)")
		f0     = flag.Float64("f0", 0, "pdf at 0 for the three-parameter H2 fit (0 = balanced means)")
		grid   = flag.Int("grid", 8, "points of the distribution function to print")
		fitCSV = flag.String("fit-csv", "", "EM-fit a hyperexponential to the one-column CSV trace in this file")
		branch = flag.Int("branches", 2, "EM branches with -fit-csv")
	)
	flag.Parse()

	if *fitCSV != "" {
		fitFromTrace(*fitCSV, *branch, *grid)
		return
	}

	var (
		d   *phase.PH
		err error
	)
	switch *family {
	case "exp":
		d = phase.ExpoMean(*mean)
	case "erlang":
		d = phase.ErlangMean(*stages, *mean)
	case "h2":
		if *f0 > 0 {
			d, err = phase.HyperExpFitPDF0(*mean, *cv2, *f0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phfit:", err)
				os.Exit(1)
			}
		} else {
			d = phase.HyperExpFit(*mean, *cv2)
		}
	case "coxian":
		d = phase.Coxian2(*mean, *cv2)
	case "tpt":
		d = phase.TPT(*stages, *alpha, *mean)
	default:
		fmt.Fprintf(os.Stderr, "phfit: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "phfit: fit produced an invalid distribution:", err)
		os.Exit(1)
	}

	fmt.Println(d)
	fmt.Printf("  moments: E[T]=%.6g  E[T²]=%.6g  E[T³]=%.6g\n", d.Moment(1), d.Moment(2), d.Moment(3))
	fmt.Printf("  Var=%.6g  C²=%.6g  pdf(0)=%.6g\n\n", d.Variance(), d.CV2(), d.PDF0())

	fmt.Println("  entry vector p:", fmtVec(d.Alpha))
	fmt.Println("  rates µ:       ", fmtVec(d.Rates))
	fmt.Println("  B = M(I−P):")
	fmt.Print(indent(d.B().String()))

	fmt.Println("\n  t, F(t), R(t):")
	for i := 1; i <= *grid; i++ {
		t := d.Mean() * float64(i) / 2
		fmt.Printf("  %8.4g  %8.6f  %8.6f\n", t, d.CDF(t), d.Reliability(t))
	}
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.6g", x)
	}
	return out + "]"
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

// fitFromTrace EM-fits a hyperexponential to a CSV trace and reports
// both the trace summary and the fitted law.
func fitFromTrace(path string, branches, grid int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phfit:", err)
		os.Exit(1)
	}
	defer f.Close()
	samples, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phfit:", err)
		os.Exit(1)
	}
	sum, err := trace.Summarize(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phfit:", err)
		os.Exit(1)
	}
	fmt.Printf("trace: n=%d mean=%.6g C²=%.6g median=%.6g p99=%.6g max=%.6g\n",
		sum.N, sum.Mean, sum.CV2, sum.Median, sum.P99, sum.Max)
	res, err := phase.FitHyperEM(samples, branches, 1000, 1e-10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phfit:", err)
		os.Exit(1)
	}
	fmt.Printf("EM: %d iterations, converged=%v, logL=%.4f\n\n", res.Iterations, res.Converged, res.LogLikelihood)
	d := res.Dist
	fmt.Println(d)
	fmt.Println("  branch probs:", fmtVec(d.Alpha))
	fmt.Println("  branch rates:", fmtVec(d.Rates))
	fmt.Println("\n  t, F(t), R(t):")
	for i := 1; i <= grid; i++ {
		t := d.Mean() * float64(i) / 2
		fmt.Printf("  %8.4g  %8.6f  %8.6f\n", t, d.CDF(t), d.Reliability(t))
	}
}
